package drc

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"riot/internal/core"
	"riot/internal/filter"
	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
	"riot/internal/sticks"
)

const L = rules.Lambda

// lamRule is a 2-wide / 3-apart rule used by the synthetic layer
// tests.
var lamRule = rules.Rule{MinWidth: 2, MinSpacing: 3}

func rectsOnly(vs []Violation, rule Rule) []Violation {
	var out []Violation
	for _, v := range vs {
		if v.Rule == rule {
			out = append(out, v)
		}
	}
	return out
}

func TestWidthExactMinimumPasses(t *testing.T) {
	// a wire at exactly minimum width, horizontal and vertical, plus a
	// fat pad: all legal
	rects := []geom.Rect{
		geom.R(0, 0, 2*L, 20*L),     // vertical min-width wire
		geom.R(0, 0, 20*L, 2*L),     // horizontal min-width wire
		geom.R(30*L, 0, 40*L, 10*L), // fat pad
		geom.R(30*L, 0, 32*L, 30*L), // wire leaving the pad
	}
	if vs := rectsOnly(CheckLayer(geom.NM, rects, lamRule), RuleWidth); len(vs) != 0 {
		t.Errorf("exact-minimum geometry flagged: %v", vs)
	}
}

func TestWidthSliverFlagged(t *testing.T) {
	// one centimicron under the rule fails, however long the wire
	rects := []geom.Rect{geom.R(0, 0, 2*L-1, 20*L)}
	vs := rectsOnly(CheckLayer(geom.NM, rects, lamRule), RuleWidth)
	if len(vs) != 1 {
		t.Fatalf("sliver violations = %v", vs)
	}
	if vs[0].Got != 2*L-1 || vs[0].Want != 2*L {
		t.Errorf("got/want = %d/%d", vs[0].Got, vs[0].Want)
	}
	if vs[0].Layer != geom.NM {
		t.Errorf("layer = %v", vs[0].Layer)
	}
}

func TestWidthNotchNeck(t *testing.T) {
	// two wide pads joined by a neck: the merged region pinches below
	// minimum width at the neck even though every input rect is wide
	pads := []geom.Rect{
		geom.R(0, 0, 10*L, 10*L),
		geom.R(14*L, 0, 24*L, 10*L),
	}
	neck := geom.R(10*L, 4*L, 14*L, 4*L+L) // 1 lambda tall bridge
	vs := rectsOnly(CheckLayer(geom.NM, append(pads, neck), lamRule), RuleWidth)
	if len(vs) != 1 {
		t.Fatalf("neck violations = %v", vs)
	}
	if !vs[0].Rect.Overlaps(neck) {
		t.Errorf("violation %v does not cover the neck %v", vs[0].Rect, neck)
	}
	// widen the neck to the rule: legal
	wide := geom.R(10*L, 4*L, 14*L, 6*L)
	if vs := rectsOnly(CheckLayer(geom.NM, append(pads, wide), lamRule), RuleWidth); len(vs) != 0 {
		t.Errorf("legal neck flagged: %v", vs)
	}
}

func TestWidthCornerShapesPass(t *testing.T) {
	// L, T and cross junctions of minimum-width wires are legal: the
	// opening square fits in every arm
	arms := []geom.Rect{
		geom.R(10*L, 0, 12*L, 30*L), // vertical
		geom.R(0, 14*L, 30*L, 16*L), // horizontal through it
		geom.R(0, 28*L, 12*L, 30*L), // L corner at the top
	}
	if vs := rectsOnly(CheckLayer(geom.NP, arms, rules.Rule{MinWidth: 2, MinSpacing: 2}), RuleWidth); len(vs) != 0 {
		t.Errorf("junctions flagged: %v", vs)
	}
}

func TestSpacingEdgeAndCorner(t *testing.T) {
	a := geom.R(0, 0, 4*L, 4*L)
	cases := []struct {
		name string
		b    geom.Rect
		want int // violations
		got  int // reported separation, when violating
	}{
		{"at rule", geom.R(4*L+3*L, 0, 11*L, 4*L), 0, 0},
		{"one under", geom.R(4*L+3*L-1, 0, 11*L, 4*L), 1, 3*L - 1},
		{"far", geom.R(20*L, 0, 24*L, 4*L), 0, 0},
		// diagonal: dx=dy=2.2 lambda; Euclidean 3.11 lambda >= 3: legal
		// even though each axis gap alone is under the rule
		{"diagonal legal", geom.R(4*L+550, 4*L+550, 11*L, 11*L), 0, 0},
		// diagonal: dx=dy=2 lambda; Euclidean 2.83 lambda < 3: violation
		{"diagonal violating", geom.R(4*L+2*L, 4*L+2*L, 11*L, 11*L), 1, isqrt(8 * L * L)},
	}
	for _, c := range cases {
		vs := rectsOnly(CheckLayer(geom.ND, []geom.Rect{a, c.b}, lamRule), RuleSpacing)
		if len(vs) != c.want {
			t.Errorf("%s: violations = %v", c.name, vs)
			continue
		}
		if c.want == 1 && vs[0].Got != c.got {
			t.Errorf("%s: got = %d, want %d", c.name, vs[0].Got, c.got)
		}
	}
}

func TestSpacingConnectedMaterialExempt(t *testing.T) {
	// a U of touching rects: the arms are 1 lambda apart but connected
	// through the base — one component, no spacing violation
	u := []geom.Rect{
		geom.R(0, 0, 2*L, 10*L),
		geom.R(2*L, 0, 3*L+2*L, 2*L), // base touches both arms
		geom.R(3*L, 2*L, 3*L+2*L, 10*L),
	}
	if vs := rectsOnly(CheckLayer(geom.NM, u, lamRule), RuleSpacing); len(vs) != 0 {
		t.Errorf("connected U flagged: %v", vs)
	}
}

func libDesign(t testing.TB) *core.Design {
	t.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSeededPlacementViolation: the checker's reason to exist — two
// library cells placed a hair apart without abutting. The gap between
// their poly combs is under the rule and must be flagged; the same
// pair properly abutted (boxes touching) is the paper's connection
// primitive and must not be.
func TestSeededPlacementViolation(t *testing.T) {
	d := libDesign(t)
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, _ := core.NewEditor(d, top)
	if _, err := e.CreateInstance("SRCELL", "a", geom.Identity, 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	// SRCELL is 20 lambda wide and its wires overhang the box by half
	// a width. At a 23-lambda offset the boxes are 3 lambda apart (no
	// abutment), the overhanging metal rails just touch (connected, so
	// exempt) and the facing poly data wires end up 1 lambda apart —
	// under the 2-lambda poly rule
	if _, err := e.CreateInstance("SRCELL", "b", geom.MakeTransform(geom.R0, geom.Pt(23*L, 0)), 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	vs, err := CheckCell(top)
	if err != nil {
		t.Fatal(err)
	}
	sp := rectsOnly(vs, RuleSpacing)
	if len(sp) == 0 {
		t.Fatal("1-lambda placement gap not flagged")
	}
	for _, v := range sp {
		if v.Got >= v.Want {
			t.Errorf("reported separation %d not under rule %d", v.Got, v.Want)
		}
	}

	// abut them instead: boxes touch, the seam is trusted
	abutted := core.NewComposition("ABUT")
	if err := d.AddCell(abutted); err != nil {
		t.Fatal(err)
	}
	e2, _ := core.NewEditor(d, abutted)
	e2.CreateInstance("SRCELL", "a", geom.Identity, 1, 1, 0, 0)
	e2.CreateInstance("SRCELL", "b", geom.MakeTransform(geom.R0, geom.Pt(20*L, 0)), 1, 1, 0, 0)
	vs, err = CheckCell(abutted)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("abutted pair flagged: %v", vs)
	}
}

// TestSeededWidthViolation: a cell carrying a sliver — width
// violations are reported regardless of occurrence trust.
func TestSeededWidthViolation(t *testing.T) {
	d := libDesign(t)
	sliver, err := core.NewLeafFromSticks(&sticks.Cell{
		Name:   "BADCELL",
		Box:    geom.R(0, 0, 10, 10),
		HasBox: true,
		Wires: []sticks.Wire{
			// 2-lambda metal: one under the 3-lambda rule
			{Layer: geom.NM, Width: 2, Points: []geom.Point{{X: 0, Y: 5}, {X: 10, Y: 5}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddCell(sliver); err != nil {
		t.Fatal(err)
	}
	vs, err := CheckCell(sliver)
	if err != nil {
		t.Fatal(err)
	}
	w := rectsOnly(vs, RuleWidth)
	if len(w) == 0 {
		t.Fatal("seeded width violation not found")
	}
	if w[0].Layer != geom.NM || w[0].Want != 3*L {
		t.Errorf("violation = %+v", w[0])
	}
}

// TestLibraryAndExamplesClean: the shipped cell library, replicated
// arrays of it, and both figure-9 filter variants check clean — the
// acceptance bar for the checker's default rule set.
func TestLibraryAndExamplesClean(t *testing.T) {
	d := libDesign(t)
	for _, name := range d.CellNames() {
		c, _ := d.Cell(name)
		vs, err := CheckCell(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(vs) != 0 {
			t.Errorf("%s: %v", name, vs)
		}
	}
	// an abutting SRCELL array: seams between copies are trusted
	// abutment, rails merge across rows
	top := core.NewComposition("ARR")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	sr, _ := d.Cell("SRCELL")
	in := core.NewInstance("a", sr, geom.Identity)
	in.Nx, in.Ny = 4, 3
	in.Sx, in.Sy = 20*L, 24*L
	top.Instances = append(top.Instances, in)
	if vs, err := CheckCell(top); err != nil || len(vs) != 0 {
		t.Errorf("array: err=%v violations=%v", err, vs)
	}
	for _, variant := range []filter.Variant{filter.Routed, filter.Stretched} {
		_, logic, _, err := filter.BuildLogic(variant)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		vs, err := CheckCell(logic)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		if len(vs) != 0 {
			t.Errorf("%v: %v", variant, vs)
		}
	}
}

// TestDeterministicOrder: identical designs produce identical
// violation slices, and shuffling the rectangle order of a layer does
// not change the (sorted) report.
func TestDeterministicOrder(t *testing.T) {
	d := libDesign(t)
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, _ := core.NewEditor(d, top)
	e.CreateInstance("SRCELL", "a", geom.Identity, 1, 1, 0, 0)
	e.CreateInstance("SRCELL", "b", geom.MakeTransform(geom.R0, geom.Pt(21*L, 0)), 1, 1, 0, 0)
	e.CreateInstance("NAND", "c", geom.MakeTransform(geom.R0, geom.Pt(0, 26*L)), 1, 1, 0, 0)
	first, err := CheckCell(top)
	if err != nil {
		t.Fatal(err)
	}
	second, err := CheckCell(top)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("reports differ:\n%v\n%v", first, second)
	}

	rects := []geom.Rect{
		geom.R(0, 0, 2*L, 10*L),
		geom.R(2*L+2*L, 0, 7*L, 10*L), // 2 lambda gap: violation
		geom.R(0, 12*L, 10*L, 12*L+L), // sliver
		geom.R(20*L, 0, 24*L, 4*L),
	}
	want := CheckLayer(geom.NM, rects, lamRule)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]geom.Rect(nil), rects...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := CheckLayer(geom.NM, shuffled, lamRule); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: shuffled report differs:\n%v\n%v", trial, got, want)
		}
	}
}

// TestWidthFuzzAgainstRaster cross-checks the morphological width
// checker against the definition: a point of the region violates
// minimum width exactly when no minW x minW square containing it fits
// inside the region. The reference rasterizes the region in doubled
// coordinates and slides every square position with prefix sums.
func TestWidthFuzzAgainstRaster(t *testing.T) {
	rng := rand.New(rand.NewSource(1982))
	for trial := 0; trial < 60; trial++ {
		span := 12 + rng.Intn(18)
		minW := 2 + rng.Intn(4)
		n := 1 + rng.Intn(8)
		rects := make([]geom.Rect, n)
		for i := range rects {
			x, y := rng.Intn(span), rng.Intn(span)
			w, h := 1+rng.Intn(span/2), 1+rng.Intn(span/2)
			rects[i] = geom.R(x, y, x+w, y+h)
		}
		// run the production pipeline at rule granularity 1 (the rects
		// here are already in "centimicrons")
		vs := widthViolations(geom.NM, rects, minW)
		var resid []geom.Rect
		for _, v := range vs {
			resid = append(resid, v.Rect)
		}
		checkWidthAgainstRaster(t, trial, rects, minW, resid)
	}
}

// checkWidthAgainstRaster compares residual rects with the brute
// square-fitting definition on the doubled integer grid. Closed-set
// boundaries make exact point membership ambiguous on residual edges,
// so the comparison allows boundary slop: brute violations must lie in
// some (closed) residual rect, and residual-interior points must be
// brute violations.
func checkWidthAgainstRaster(t *testing.T, trial int, rects []geom.Rect, minW int, resid []geom.Rect) {
	t.Helper()
	// doubled grid bounds
	b := rects[0]
	for _, r := range rects[1:] {
		b = b.Union(r)
	}
	x0, y0 := 2*b.Min.X, 2*b.Min.Y
	w, h := 2*b.W()+1, 2*b.H()+1
	occ := make([][]bool, h)
	for y := range occ {
		occ[y] = make([]bool, w)
	}
	for _, r := range rects {
		for y := 2*r.Min.Y - y0; y <= 2*r.Max.Y-y0; y++ {
			for x := 2*r.Min.X - x0; x <= 2*r.Max.X-x0; x++ {
				occ[y][x] = true
			}
		}
	}
	// prefix sums over occupancy
	pre := make([][]int, h+1)
	pre[0] = make([]int, w+1)
	for y := 0; y < h; y++ {
		pre[y+1] = make([]int, w+1)
		for x := 0; x < w; x++ {
			v := 0
			if occ[y][x] {
				v = 1
			}
			pre[y+1][x+1] = pre[y+1][x] + pre[y][x+1] - pre[y][x] + v
		}
	}
	full := func(x, y, side int) bool { // all points of [x,x+side] x [y,y+side] covered
		if x < 0 || y < 0 || x+side >= w || y+side >= h {
			return false
		}
		n := side + 1
		return pre[y+n][x+n]-pre[y+n][x]-pre[y][x+n]+pre[y][x] == n*n
	}
	side := 2*minW - 1
	ok := make([][]bool, h)
	for y := range ok {
		ok[y] = make([]bool, w)
	}
	for y := 0; y+side < h; y++ {
		for x := 0; x+side < w; x++ {
			if full(x, y, side) {
				for yy := y; yy <= y+side; yy++ {
					for xx := x; xx <= x+side; xx++ {
						ok[yy][xx] = true
					}
				}
			}
		}
	}
	inResid := func(px, py int, strict bool) bool { // doubled coords
		for _, r := range resid {
			rx0, ry0, rx1, ry1 := 2*r.Min.X, 2*r.Min.Y, 2*r.Max.X, 2*r.Max.Y
			if strict {
				if px > rx0 && px < rx1 && py > ry0 && py < ry1 {
					return true
				}
			} else if px >= rx0 && px <= rx1 && py >= ry0 && py <= ry1 {
				return true
			}
		}
		return false
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			px, py := x+x0, y+y0
			if occ[y][x] && !ok[y][x] && !inResid(px, py, false) {
				t.Fatalf("trial %d (minW=%d): brute violation at doubled (%d,%d) missing from residual %v",
					trial, minW, px, py, resid)
			}
			if inResid(px, py, true) && !(occ[y][x] && !ok[y][x]) {
				t.Fatalf("trial %d (minW=%d): residual interior point doubled (%d,%d) is not a brute violation (resid %v)",
					trial, minW, px, py, resid)
			}
		}
	}
}

// synthResult builds a flatten.Result over bare shapes for inter-layer
// rule tests (no provenance: Src 0 with one dummy occurrence box).
func synthResult(shapes ...geom.Rect) func(layers ...geom.Layer) *flatten.Result {
	return func(layers ...geom.Layer) *flatten.Result {
		fr := &flatten.Result{SrcBoxes: []geom.Rect{geom.R(-1000*L, -1000*L, 1000*L, 1000*L)}}
		for i, r := range shapes {
			fr.Shapes = append(fr.Shapes, flatten.Shape{Layer: layers[i], R: r, Src: 0})
		}
		return fr
	}
}

func TestContactSurroundExactPasses(t *testing.T) {
	// the library contact structure: 2x2 cut centered in a 4x4 metal
	// plate — exactly ContactSurround lambda on every side
	fr := synthResult(
		geom.R(0, 0, 4*L, 4*L),     // NM plate
		geom.R(1*L, 1*L, 3*L, 3*L), // NC cut
	)(geom.NM, geom.NC)
	if vs := rectsOnly(Check(fr), RuleContactSurround); len(vs) != 0 {
		t.Errorf("exact-surround contact flagged: %v", vs)
	}
}

func TestContactSurroundSplitMetalPasses(t *testing.T) {
	// surround assembled from two abutting metal rectangles still covers
	fr := synthResult(
		geom.R(0, 0, 2*L, 4*L),
		geom.R(2*L, 0, 4*L, 4*L),
		geom.R(1*L, 1*L, 3*L, 3*L),
	)(geom.NM, geom.NM, geom.NC)
	if vs := rectsOnly(Check(fr), RuleContactSurround); len(vs) != 0 {
		t.Errorf("split-metal surround flagged: %v", vs)
	}
}

func TestContactSurroundFlushMetalFlagged(t *testing.T) {
	// metal flush with the cut: zero surround
	fr := synthResult(
		geom.R(1*L, 1*L, 3*L, 3*L), // NM exactly the cut
		geom.R(1*L, 1*L, 3*L, 3*L), // NC cut
	)(geom.NM, geom.NC)
	vs := rectsOnly(Check(fr), RuleContactSurround)
	if len(vs) == 0 {
		t.Fatal("flush metal not flagged")
	}
	if vs[0].Want != ContactSurround*L || vs[0].Got != 0 {
		t.Errorf("got/want = %d/%d", vs[0].Got, vs[0].Want)
	}
	if s := vs[0].String(); !strings.Contains(s, "0 < 1 lambda") {
		t.Errorf("violation renders as %q, want lambda distances", s)
	}
}

func TestContactSurroundOneSideShortFlagged(t *testing.T) {
	// plate shifted one lambda: full surround on the left, none on the
	// right
	fr := synthResult(
		geom.R(-1*L, 0, 3*L, 4*L),
		geom.R(1*L, 1*L, 3*L, 3*L),
	)(geom.NM, geom.NC)
	vs := rectsOnly(Check(fr), RuleContactSurround)
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	want := geom.R(3*L, 0, 4*L, 4*L) // the uncovered right strip of the frame
	if vs[0].Rect != want {
		t.Errorf("residue = %v, want %v", vs[0].Rect, want)
	}
}

func TestContactSurroundUncutLayersIgnored(t *testing.T) {
	// no NC present: the pass is a no-op even with metal everywhere
	fr := synthResult(geom.R(0, 0, 40*L, 40*L))(geom.NM)
	if vs := rectsOnly(Check(fr), RuleContactSurround); len(vs) != 0 {
		t.Errorf("cutless design flagged: %v", vs)
	}
}

func TestContactSurroundLibraryPadsClean(t *testing.T) {
	// the shipped CIF pads carry their cuts in 4x4 metal plates
	cells, err := lib.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		vs, err := CheckCell(c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if sur := rectsOnly(vs, RuleContactSurround); len(sur) != 0 {
			t.Errorf("%s: contact-surround violations: %v", c.Name, sur)
		}
	}
}
