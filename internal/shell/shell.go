// Package shell implements Riot's textual command interface: "accessed
// with the keyboard, [it] is used primarily to modify the editing
// environment. Textual commands store and retrieve cells on disk, set
// plotting parameters, generate hardcopy plots of cells, set defaults
// for routing operations, and invoke the graphical command editor to
// modify a composition cell."
//
// In this reproduction the same command language also expresses the
// graphical editing operations (the ui package maps pointer gestures
// onto these commands), which makes the shell the natural journal
// format for REPLAY: every mutating command is recorded and can be
// re-run.
//
// Coordinates in shell commands are in lambda; the shell converts to
// the centimicron units the composition core uses.
package shell

import (
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"

	"riot/internal/castore"
	"riot/internal/core"
	"riot/internal/faultinject"
	"riot/internal/lvs"
	"riot/internal/obs"
	"riot/internal/replay"
	"riot/internal/rules"
	"riot/internal/verify"
)

// Shell interprets the textual command language over one design.
type Shell struct {
	Design *core.Design
	Editor *core.Editor // nil when no cell is under edit
	Out    io.Writer

	// Verifier caches whole-design verification (EXTRACT, DRC, LVS)
	// across edits, keyed on the editor's generation: re-running any of
	// the commands after a small edit splices the previous run instead
	// of recomputing the design.
	Verifier verify.Verifier

	// LVS holds the netlist-comparison caches (memoized leaf-cell
	// reference netlists, the last verdict); the layout side comes from
	// the shared Verifier, so LVS after DRC re-extracts nothing.
	LVS lvs.Incremental

	// Cache is the persistent verification store attached with
	// AttachCache, nil when the session runs on in-memory caches only.
	Cache *castore.Store

	// Faults is the session's fault-injection set (nil = disarmed),
	// wired with InjectFaults; LVS -stats reports its fire counts.
	Faults *faultinject.Set

	// FS resolves READ and REPLAY file names; WriteFile stores WRITE
	// and SAVEJOURNAL output. Both must be provided (tests use maps,
	// cmd/riot wires the OS).
	FS        fs.FS
	WriteFile func(name string, data []byte) error

	// CreateFile, when set, opens a streaming sink for bulk output:
	// WRITECIF streams mask geometry straight to it instead of
	// buffering the whole file through WriteFile. cmd/riot wires
	// os.Create; when nil the shell falls back to WriteFile.
	CreateFile func(name string) (io.WriteCloser, error)

	// Plot renders a cell to a plotter file; wired by the caller once
	// a display stack exists (keeps shell independent of graphics).
	Plot func(cell *core.Cell, file string) error

	Journal *replay.Journal

	// Guard, when set, is the shared-design lock a server installs:
	// Exec takes it exclusively around mutating commands and shared for
	// just long enough to freeze a snapshot for verifying commands (the
	// verification itself runs against the immutable snapshot, outside
	// the lock, so one session's long DRC never blocks another's edits).
	// nil — the default, every single-user surface — costs nothing.
	Guard *sync.RWMutex

	// reg is the unified stats registry every surface (STATS, riot
	// -stats, Session.Snapshot) renders from; trace is the session's
	// span recorder, nil unless SetTrace wired one.
	reg   *obs.Registry
	trace *obs.Trace

	quit bool
}

// New returns a shell over a fresh design. The verifier's hierarchical
// path is on: DRC, EXTRACT and LVS verify per-distinct-cell
// certificates instead of flattened copies whenever the engine can
// prove the verdict identical (and fall back silently when it can't).
func New(out io.Writer) *Shell {
	s := &Shell{
		Design:  core.NewDesign(),
		Out:     out,
		Journal: replay.New(),
	}
	s.Verifier.Hier = true
	s.initRegistry()
	return s
}

// Quit reports whether the QUIT command has run.
func (s *Shell) Quit() bool { return s.quit }

// AttachCache opens (creating if needed) the persistent verification
// store rooted at dir and wires it under the verifier's flatten cache
// and both LVS memos, so flatten shards, leaf reference netlists and
// sub-cell match certificates survive across processes. Corrupt,
// truncated or version-skewed entries are quarantined and recomputed
// cold (the store logs each through the shell output); verdicts are
// identical to cache-free runs either way.
func (s *Shell) AttachCache(dir string) error {
	st, err := castore.Open(dir)
	if err != nil {
		return err
	}
	st.Log = func(format string, args ...any) { s.printf(format+"\n", args...) }
	st.Faults = s.Faults
	st.Trace = s.trace
	s.Cache = st
	s.LVS.AttachDisk(st, &castore.Signer{}, &s.Verifier)
	return nil
}

// AttachStore wires a prebuilt content-addressed store — typically a
// server's shared in-memory tier layered over one on-disk store — plus
// a shared signer under the session's caches. Unlike AttachCache it
// opens nothing and takes no ownership: many sessions attach the same
// store and signer, and any session deriving a verification artifact
// warms every other.
func (s *Shell) AttachStore(b castore.Blob, sg *castore.Signer) {
	s.LVS.AttachDisk(b, sg, &s.Verifier)
}

// InjectFaults arms the whole pipeline with a fault-injection set
// (nil disarms): the hierarchical engine's degradation edges and the
// persistent store's corruption path. Order-independent with
// AttachCache — whichever runs second picks the set up.
func (s *Shell) InjectFaults(f *faultinject.Set) {
	s.Faults = f
	s.Verifier.InjectFaults(f)
	if s.Cache != nil {
		s.Cache.Faults = f
	}
}

func (s *Shell) printf(format string, args ...any) {
	if s.Out != nil {
		fmt.Fprintf(s.Out, format, args...)
	}
}

// Exec parses and executes one command line. Comment lines (#) and
// blanks are ignored. Successful mutating commands are recorded in the
// journal.
func (s *Shell) Exec(line string) error {
	trimmed := strings.TrimSpace(line)
	if trimmed == "" || strings.HasPrefix(trimmed, "#") {
		return nil
	}
	fields := strings.Fields(trimmed)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]

	spec, ok := commands[cmd]
	if !ok {
		return fmt.Errorf("shell: unknown command %q (try HELP)", cmd)
	}
	// Commands marked concurrent freeze their own snapshot under the
	// shared-design read lock (see snapTarget) and verify outside it;
	// everything else — mutations, file IO against session state —
	// holds the design exclusively for the command's duration.
	var err error
	if s.Guard != nil && !spec.concurrent {
		s.Guard.Lock()
		if spec.needsEditor && s.Editor == nil {
			err = fmt.Errorf("shell: %s needs a cell under edit (use EDIT <cell>)", cmd)
		} else {
			err = spec.run(s, args)
		}
		s.Guard.Unlock()
	} else {
		if spec.needsEditor && s.Editor == nil {
			return fmt.Errorf("shell: %s needs a cell under edit (use EDIT <cell>)", cmd)
		}
		err = spec.run(s, args)
	}
	if err != nil {
		return err
	}
	if spec.mutating && s.Journal != nil {
		s.Journal.Record(trimmed)
	}
	return nil
}

// Run executes commands from r until EOF or QUIT. Errors are printed,
// not fatal — like the interactive tool.
func (s *Shell) Run(r io.Reader) error {
	sc := newLineScanner(r)
	for !s.quit && sc.Scan() {
		if err := s.Exec(sc.Text()); err != nil {
			s.printf("?%v\n", err)
		}
	}
	return sc.Err()
}

// ExecAll executes a batch of commands, failing fast. Used by
// programmatic callers and tests.
func (s *Shell) ExecAll(lines ...string) error {
	for _, l := range lines {
		if err := s.Exec(l); err != nil {
			return err
		}
	}
	return nil
}

type command struct {
	usage       string
	help        string
	mutating    bool
	needsEditor bool
	// concurrent marks commands that manage the shared-design Guard
	// themselves (verification: they freeze a snapshot under a brief
	// read lock, then work lock-free) or touch only session-local state
	// (STATS). Exec runs everything else under the exclusive lock.
	concurrent bool
	run        func(s *Shell, args []string) error
}

var commands map[string]command

func init() {
	commands = map[string]command{
		"HELP":        {usage: "HELP", help: "list commands", run: cmdHelp},
		"READ":        {usage: "READ <file>", help: "read a CIF, Sticks or composition file", mutating: true, run: cmdRead},
		"WRITE":       {usage: "WRITE <file>", help: "save the design in composition format", run: cmdWrite},
		"WRITECIF":    {usage: "WRITECIF <file> <cell>", help: "convert a cell to CIF for mask generation", run: cmdWriteCIF},
		"WRITESTICKS": {usage: "WRITESTICKS <file> <cell>", help: "write a symbolic cell as Sticks (for simulation)", run: cmdWriteSticks},
		"CELLS":       {usage: "CELLS", help: "list the cell menu", run: cmdCells},
		"SHOW":        {usage: "SHOW <cell>", help: "describe a cell", run: cmdShow},
		"DELCELL":     {usage: "DELCELL <cell>", help: "delete a cell", mutating: true, run: cmdDelCell},
		"RENAME":      {usage: "RENAME <old> <new>", help: "rename a cell", mutating: true, run: cmdRename},
		"EDIT":        {usage: "EDIT <cell>", help: "open a composition cell in the editor (creates it if new)", mutating: true, run: cmdEdit},
		"ENDEDIT":     {usage: "ENDEDIT", help: "close the editor", mutating: true, run: cmdEndEdit},
		"CREATE":      {usage: "CREATE <cell> [<inst>] [AT x y] [ORIENT o] [ARRAY nx ny [sx sy]]", help: "create an instance", mutating: true, needsEditor: true, run: cmdCreate},
		"MOVE":        {usage: "MOVE <inst> <dx> <dy>", help: "move an instance (lambda)", mutating: true, needsEditor: true, run: cmdMove},
		"PLACE":       {usage: "PLACE <inst> <x> <y>", help: "place an instance absolutely (lambda)", mutating: true, needsEditor: true, run: cmdPlace},
		"ORIENT":      {usage: "ORIENT <inst> <R0|R90|R180|R270|MX|MXR90|MXR180|MXR270>", help: "re-orient an instance in place", mutating: true, needsEditor: true, run: cmdOrient},
		"REPLICATE":   {usage: "REPLICATE <inst> <nx> <ny> [sx sy]", help: "array-replicate an instance", mutating: true, needsEditor: true, run: cmdReplicate},
		"DELETE":      {usage: "DELETE <inst>", help: "delete an instance", mutating: true, needsEditor: true, run: cmdDelete},
		"CONNECT":     {usage: "CONNECT <inst>.<conn> <inst>.<conn>", help: "add a pending connection (from -> to)", mutating: true, needsEditor: true, run: cmdConnect},
		"ABUTLINK":    {usage: "ABUTLINK <from> <to>", help: "add a pending pure-abutment link", mutating: true, needsEditor: true, run: cmdAbutLink},
		"BUS":         {usage: "BUS <from> <to>", help: "add pending connections for every facing connector pair", mutating: true, needsEditor: true, run: cmdBus},
		"CONNECTIONS": {usage: "CONNECTIONS", help: "list pending connections", needsEditor: true, run: cmdConnections},
		"UNCONNECT":   {usage: "UNCONNECT <index>", help: "delete a pending connection", mutating: true, needsEditor: true, run: cmdUnconnect},
		"CLEAR":       {usage: "CLEAR", help: "clear the pending connection list", mutating: true, needsEditor: true, run: cmdClear},
		"ABUT":        {usage: "ABUT [OVERLAP]", help: "connect by abutment", mutating: true, needsEditor: true, run: cmdAbut},
		"ROUTE":       {usage: "ROUTE [NOMOVE]", help: "connect by river routing", mutating: true, needsEditor: true, run: cmdRoute},
		"STRETCH":     {usage: "STRETCH", help: "connect by stretching the from instance", mutating: true, needsEditor: true, run: cmdStretch},
		"BRINGOUT":    {usage: "BRINGOUT <inst> <side> <conn>...", help: "route connectors out to the cell edge", mutating: true, needsEditor: true, run: cmdBringOut},
		"SET":         {usage: "SET TRACKS <n>", help: "set routing defaults", mutating: true, run: cmdSet},
		"STATS":       {usage: "STATS [JSON]", help: "print unified verification statistics (JSON: machine-readable)", concurrent: true, run: cmdStats},
		"DRC":         {usage: "DRC [<cell>]", help: "check width and spacing design rules on a cell", concurrent: true, run: cmdDRC},
		"EXTRACT":     {usage: "EXTRACT [<cell>]", help: "extract a cell's transistor-level circuit", concurrent: true, run: cmdExtract},
		"LVS":         {usage: "LVS [-stats] [<cell>]", help: "compare the extracted netlist against the declared composition (-stats: certificate accounting)", concurrent: true, run: cmdLVS},
		"PLOT":        {usage: "PLOT <file> [<cell>]", help: "produce a hardcopy plot", run: cmdPlot},
		"REPLAY":      {usage: "REPLAY <file>", help: "re-run a saved journal", run: cmdReplay},
		"SAVEJOURNAL": {usage: "SAVEJOURNAL <file>", help: "save the session journal", run: cmdSaveJournal},
		"QUIT":        {usage: "QUIT", help: "leave riot", run: cmdQuit},
	}
}

func cmdHelp(s *Shell, args []string) error {
	names := make([]string, 0, len(commands))
	for n := range commands {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := commands[n]
		s.printf("%-60s %s\n", c.usage, c.help)
	}
	return nil
}

func cmdQuit(s *Shell, args []string) error {
	s.quit = true
	return nil
}

// lam converts a lambda-denominated argument to centimicrons.
func lam(v int) int { return v * rules.Lambda }

func argInt(args []string, i int) (int, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("shell: missing argument %d", i+1)
	}
	v, err := strconv.Atoi(args[i])
	if err != nil {
		return 0, fmt.Errorf("shell: bad integer %q", args[i])
	}
	return v, nil
}

func (s *Shell) instance(name string) (*core.Instance, error) {
	in, ok := s.Editor.Cell.InstanceByName(name)
	if !ok {
		return nil, fmt.Errorf("shell: no instance %q in %q", name, s.Editor.Cell.Name)
	}
	return in, nil
}

// splitConnRef splits "inst.conn" at the FIRST dot; connector names may
// themselves contain dots (composition exports like "g1.OUT"), so the
// remainder after the first dot is the connector name.
func splitConnRef(ref string) (inst, conn string, err error) {
	i := strings.IndexByte(ref, '.')
	if i <= 0 || i == len(ref)-1 {
		return "", "", fmt.Errorf("shell: connector reference %q must be <inst>.<conn>", ref)
	}
	return ref[:i], ref[i+1:], nil
}
