package shell

import (
	"io"
	"io/fs"
	"strings"
	"testing"
	"testing/fstest"

	"riot/internal/geom"
	"riot/internal/rules"
)

const gateSticks = `STICKS GATE
BBOX 0 0 20 10
WIRE NM 2 0 5 20 5
WIRE NM 2 5 0 5 10
WIRE NM 2 15 0 15 10
CONNECTOR IN 0 5 NM 2 left
CONNECTOR OUT 20 5 NM 2 right
CONNECTOR B1 5 0 NM 2 bottom
CONNECTOR B2 15 0 NM 2 bottom
CONNECTOR T1 5 10 NM 2 top
CONNECTOR T2 15 10 NM 2 top
END
`

const padCIF = "DS 1; 9 PAD; L NM; B 10000 10000 5000 5000; 94 P 5000 0 NM 750; DF; E\n"

type testEnv struct {
	sh    *Shell
	out   *strings.Builder
	files map[string][]byte
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	out := &strings.Builder{}
	sh := New(out)
	env := &testEnv{sh: sh, out: out, files: map[string][]byte{}}
	fsys := fstest.MapFS{
		"gate.sticks": {Data: []byte(gateSticks)},
		"pad.cif":     {Data: []byte(padCIF)},
	}
	sh.FS = overlayFS{fsys, env.files}
	sh.WriteFile = func(name string, data []byte) error {
		env.files[name] = data
		return nil
	}
	return env
}

// overlayFS serves written files on top of a base fstest.MapFS, so
// SAVEJOURNAL output can be re-read by REPLAY.
type overlayFS struct {
	base  fstest.MapFS
	extra map[string][]byte
}

func (o overlayFS) Open(name string) (fs.File, error) {
	if data, ok := o.extra[name]; ok {
		m := fstest.MapFS{name: &fstest.MapFile{Data: data}}
		return m.Open(name)
	}
	return o.base.Open(name)
}

func TestShellBuildAndConnect(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	err := sh.ExecAll(
		"READ gate.sticks",
		"EDIT TOP",
		"CREATE GATE a AT 0 0",
		"CREATE GATE b AT 50 7",
		"CONNECT b.IN a.OUT",
		"ABUT",
	)
	if err != nil {
		t.Fatal(err)
	}
	top, _ := sh.Design.Cell("TOP")
	b, _ := top.InstanceByName("b")
	a, _ := top.InstanceByName("a")
	bin, _ := b.Connector("IN")
	aout, _ := a.Connector("OUT")
	if bin.At != aout.At {
		t.Errorf("abut failed: %v vs %v", bin.At, aout.At)
	}
}

func TestShellRouteAndJournal(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	err := sh.ExecAll(
		"READ gate.sticks",
		"EDIT TOP",
		"CREATE GATE a AT 0 0",
		"CREATE GATE b AT 7 60",
		"CONNECT b.B1 a.T1",
		"CONNECT b.B2 a.T2",
		"ROUTE",
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(env.out.String(), "route cell") {
		t.Errorf("no route report:\n%s", env.out.String())
	}
	// journal recorded the mutating commands
	lines := sh.Journal.Lines()
	if len(lines) != 7 {
		t.Errorf("journal lines = %d: %v", len(lines), lines)
	}
}

func TestShellCreateVariants(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	err := sh.ExecAll(
		"READ gate.sticks",
		"EDIT TOP",
		"CREATE GATE arr AT 0 0 ARRAY 4 1",
		"CREATE GATE rot AT 100 0 ORIENT R90",
	)
	if err != nil {
		t.Fatal(err)
	}
	top, _ := sh.Design.Cell("TOP")
	arr, _ := top.InstanceByName("arr")
	if arr.Nx != 4 || arr.Sx != 20*rules.Lambda {
		t.Errorf("array = %dx%d spacing %d", arr.Nx, arr.Ny, arr.Sx)
	}
	rot, _ := top.InstanceByName("rot")
	if rot.Tr.O != geom.R90 {
		t.Errorf("orient = %v", rot.Tr.O)
	}
}

func TestShellErrors(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	cases := []string{
		"BOGUS",
		"CREATE GATE x",            // no editor
		"READ missing.cif",         // missing file
		"READ gate.txt",            // unknown extension
		"CONNECT a b",              // no editor
		"EDIT",                     // missing arg
	}
	for _, c := range cases {
		if err := sh.Exec(c); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// errors are not recorded in the journal
	if sh.Journal.Len() != 0 {
		t.Errorf("journal polluted: %v", sh.Journal.Lines())
	}
}

func TestShellWriteCIF(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	err := sh.ExecAll(
		"READ gate.sticks",
		"READ pad.cif",
		"EDIT TOP",
		"CREATE GATE a AT 0 0",
		"CREATE PAD p AT 0 30",
		"ENDEDIT",
		"WRITECIF out.cif TOP",
	)
	if err != nil {
		t.Fatal(err)
	}
	data, ok := env.files["out.cif"]
	if !ok {
		t.Fatal("out.cif not written")
	}
	text := string(data)
	if !strings.Contains(text, "9 TOP;") || !strings.Contains(text, "9 PAD;") {
		t.Errorf("CIF missing symbols:\n%s", text)
	}
}

// streamSink records writes through the shell's CreateFile hook so the
// streaming WRITECIF path can be compared against the buffered one.
type streamSink struct {
	env    *testEnv
	name   string
	buf    strings.Builder
	closed bool
}

func (w *streamSink) Write(p []byte) (int, error) { return w.buf.WriteString(string(p)) }
func (w *streamSink) Close() error {
	w.closed = true
	w.env.files[w.name] = []byte(w.buf.String())
	return nil
}

// TestShellWriteCIFStreams checks WRITECIF prefers the CreateFile
// streaming sink (mask text never passes through WriteFile) and that
// the streamed bytes equal the buffered path's exactly.
func TestShellWriteCIFStreams(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	err := sh.ExecAll(
		"READ gate.sticks",
		"EDIT TOP",
		"CREATE GATE a AT 0 0",
		"CREATE GATE b AT 20 0",
		"ENDEDIT",
		"WRITECIF buffered.cif TOP",
	)
	if err != nil {
		t.Fatal(err)
	}

	var sink *streamSink
	sh.CreateFile = func(name string) (io.WriteCloser, error) {
		sink = &streamSink{env: env, name: name}
		return sink, nil
	}
	sh.WriteFile = func(name string, data []byte) error {
		t.Fatalf("WRITECIF buffered %q through WriteFile with a streaming sink attached", name)
		return nil
	}
	if err := sh.Exec("WRITECIF streamed.cif TOP"); err != nil {
		t.Fatal(err)
	}
	if sink == nil || !sink.closed {
		t.Fatal("streaming sink not used or not closed")
	}
	if string(env.files["streamed.cif"]) != string(env.files["buffered.cif"]) {
		t.Error("streamed CIF differs from the buffered path")
	}
}

func TestShellWriteComposition(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	err := sh.ExecAll(
		"READ gate.sticks",
		"EDIT TOP",
		"CREATE GATE a AT 0 0",
		"ENDEDIT",
		"WRITE out.comp",
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(env.files["out.comp"]), "COMPOSITION TOP") {
		t.Error("composition file wrong")
	}
}

func TestShellShowAndCells(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	if err := sh.ExecAll("READ gate.sticks", "CELLS", "SHOW GATE"); err != nil {
		t.Fatal(err)
	}
	out := env.out.String()
	if !strings.Contains(out, "GATE") || !strings.Contains(out, "connector") {
		t.Errorf("output:\n%s", out)
	}
}

func TestShellStretch(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	err := sh.ExecAll(
		"READ gate.sticks",
		"EDIT TOP",
		"CREATE GATE a1 AT 0 0",
		"CREATE GATE a2 AT 30 0",
		"CREATE GATE b AT 0 50",
		"CONNECT b.B1 a1.T1",
		"CONNECT b.B2 a2.T2",
		"STRETCH",
	)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(env.out.String(), "stretched into") {
		t.Errorf("no stretch report:\n%s", env.out.String())
	}
}

func TestShellQuitAndRun(t *testing.T) {
	env := newEnv(t)
	input := "READ gate.sticks\nEDIT TOP\nCREATE GATE a AT 0 0\nBOGUS COMMAND\nQUIT\nCREATE GATE b\n"
	if err := env.sh.Run(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if !env.sh.Quit() {
		t.Error("QUIT did not quit")
	}
	top, _ := env.sh.Design.Cell("TOP")
	if _, ok := top.InstanceByName("b"); ok {
		t.Error("command after QUIT executed")
	}
	if !strings.Contains(env.out.String(), "?") {
		t.Error("error not reported to user")
	}
}

func TestSplitConnRef(t *testing.T) {
	inst, conn, err := splitConnRef("a.OUT")
	if err != nil || inst != "a" || conn != "OUT" {
		t.Errorf("= %q %q %v", inst, conn, err)
	}
	// composition exports keep their dots
	inst, conn, err = splitConnRef("p.w1.B1")
	if err != nil || inst != "p" || conn != "w1.B1" {
		t.Errorf("= %q %q %v", inst, conn, err)
	}
	for _, bad := range []string{"noDot", ".x", "x."} {
		if _, _, err := splitConnRef(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestShellSetTracks(t *testing.T) {
	env := newEnv(t)
	if err := env.sh.ExecAll("EDIT TOP", "SET TRACKS 2"); err != nil {
		t.Fatal(err)
	}
	if env.sh.Editor.TracksPerChannel != 2 {
		t.Error("SET TRACKS ignored")
	}
}

func TestShellDeleteAndConnections(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	err := sh.ExecAll(
		"READ gate.sticks",
		"EDIT TOP",
		"CREATE GATE a AT 0 0",
		"CREATE GATE b AT 50 0",
		"CONNECT b.IN a.OUT",
		"CONNECTIONS",
		"UNCONNECT 0",
		"DELETE b",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(sh.Editor.Pending) != 0 {
		t.Error("pending list not empty")
	}
	top, _ := sh.Design.Cell("TOP")
	if len(top.Instances) != 1 {
		t.Error("delete failed")
	}
}

func TestShellDRC(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	// two GATE instances 1 lambda apart: their facing metal wires end
	// up under the 3-lambda rule, and the boxes do not abut
	err := sh.ExecAll(
		"READ gate.sticks",
		"EDIT TOP",
		"CREATE GATE a AT 0 0",
		"CREATE GATE b AT 24 0",
		"DRC",
	)
	if err != nil {
		t.Fatal(err)
	}
	if out := env.out.String(); !strings.Contains(out, "violation") || !strings.Contains(out, "NM spacing") {
		t.Errorf("DRC report missing violations:\n%s", out)
	}
	// the named-cell form: the GATE fixture's 2-lambda metal is under
	// the 3-lambda width rule and must be reported as such
	env.out.Reset()
	if err := sh.Exec("DRC GATE"); err != nil {
		t.Fatal(err)
	}
	if out := env.out.String(); !strings.Contains(out, "NM width") {
		t.Errorf("narrow fixture metal not reported:\n%s", out)
	}
	// a clean cell: the CIF pad is one fat metal box
	if err := sh.Exec("READ pad.cif"); err != nil {
		t.Fatal(err)
	}
	env.out.Reset()
	if err := sh.Exec("DRC PAD"); err != nil {
		t.Fatal(err)
	}
	if out := env.out.String(); !strings.Contains(out, "no design-rule violations") {
		t.Errorf("clean cell reported dirty:\n%s", out)
	}
	// errors: unknown cell, no editor
	if err := sh.Exec("DRC NOPE"); err == nil {
		t.Error("DRC on unknown cell succeeded")
	}
	if err := sh.Exec("ENDEDIT"); err != nil {
		t.Fatal(err)
	}
	if err := sh.Exec("DRC"); err == nil {
		t.Error("bare DRC with no cell under edit succeeded")
	}
}
