package shell

import (
	"riot/internal/faultinject"
	"riot/internal/obs"
)

// This file wires every pipeline Stats struct into one obs.Registry, so
// all stats surfaces — the shell STATS command, riot -stats (any mode),
// and Session.Snapshot() — render the same sections in the same order
// with the same keys. Sections register up front with live providers;
// the ones for optional subsystems (the persistent store, the fault
// set) return nil until attached, which drops them from snapshots
// without perturbing the order of the rest.

// initRegistry registers every section. Called once from New; the
// providers read the shell's live fields, so late attachment (a cache,
// a fault set) shows up in the next snapshot without re-wiring.
func (s *Shell) initRegistry() {
	r := obs.NewRegistry()
	r.Register("verify", func() []obs.Item {
		vs := s.Verifier.Stats()
		return []obs.Item{
			obs.N("cached", vs.Cached),
			obs.N("spliced", vs.Spliced),
			obs.N("full", vs.Full),
			obs.N("hier", vs.Hier),
			obs.N("hier_partial", vs.HierPartial),
		}
	})
	r.Register("flatten", func() []obs.Item {
		reused, reflattened := s.Verifier.FlattenStats()
		return []obs.Item{
			obs.N("reused", reused),
			obs.N("reflattened", reflattened),
			obs.N("disk_loaded", s.Verifier.FlattenDiskStats()),
		}
	})
	r.Register("hier", func() []obs.Item {
		hs := s.Verifier.HierStats()
		items := []obs.Item{
			obs.N("runs", hs.Runs),
			obs.N("fast", hs.FastRuns),
			obs.N("fallbacks", hs.Fallbacks),
			obs.N("cert_built", hs.CertBuilt),
			obs.N("cert_memo_hits", hs.CertMemoHits),
			obs.N("cert_disk_hits", hs.CertDiskHits),
			obs.N("cert_stored", hs.CertStored),
			obs.N("template_built", hs.TemplateBuilt),
			obs.N("template_hits", hs.TemplateHits),
			obs.N("partial_runs", hs.PartialRuns),
			obs.N("quarantined", hs.Quarantined),
		}
		if d := s.Verifier.HierDeclineInfo(); d != nil {
			items = append(items, obs.S("decline", string(d.Cond)))
		}
		return items
	})
	r.Register("lvs", func() []obs.Item {
		st := s.LVS.Certs.Stats()
		items := []obs.Item{
			obs.N("matched", st.Matched),
			obs.N("hits", st.Hits),
			obs.N("disk_hits", st.DiskHits),
		}
		if last := s.LVS.Last(); last != nil {
			ct := last.Cert
			fallback := 0
			if ct.Fallback {
				fallback = 1
			}
			items = append(items,
				obs.N("occurrences", ct.Occurrences),
				obs.N("certified", ct.Certified),
				obs.N("cells", ct.Cells),
				obs.N("fallback", fallback),
			)
		}
		return items
	})
	r.Register("castore", func() []obs.Item {
		if s.Cache == nil {
			return nil
		}
		cst := s.Cache.Stats()
		return []obs.Item{
			obs.N("hits", cst.Hits),
			obs.N("misses", cst.Misses),
			obs.N("puts", cst.Puts),
			obs.N("put_errors", cst.PutErrors),
			obs.N("corrupt", cst.Corrupt),
			obs.N("quarantined", cst.Quarantined),
		}
	})
	r.Register("faults", func() []obs.Item {
		if s.Faults == nil {
			return nil
		}
		items := make([]obs.Item, 0, len(faultinject.Points))
		for _, p := range faultinject.Points {
			items = append(items, obs.N(string(p), s.Faults.Hits(p)))
		}
		return items
	})
	s.reg = r
}

// Registry exposes the shell's stats registry (consumers can register
// their own sections alongside the pipeline's).
func (s *Shell) Registry() *obs.Registry { return s.reg }

// Snapshot pulls the current unified stats: the same content the STATS
// command and riot -stats render.
func (s *Shell) Snapshot() *obs.Snapshot { return s.reg.Snapshot() }

// VerifiedAny reports whether any verification work ran this session —
// the "is there anything to report" test behind riot -stats' exit code.
func (s *Shell) VerifiedAny() bool {
	vs := s.Verifier.Stats()
	return vs.Cached+vs.Spliced+vs.Full+vs.Hier > 0
}

// SetTrace wires a span recorder through the whole session: the verify
// pipeline (flatten, extract, drc, hier), LVS and the persistent store.
// nil detaches tracing everywhere.
func (s *Shell) SetTrace(t *obs.Trace) {
	s.trace = t
	s.Verifier.SetTrace(t)
	s.LVS.Trace = t
	if s.Cache != nil {
		s.Cache.Trace = t
	}
}

// Trace reports the recorder SetTrace installed, or nil.
func (s *Shell) Trace() *obs.Trace { return s.trace }

// cmdStats prints the unified stats snapshot; STATS JSON prints the
// machine-readable form (identical content, one object).
func cmdStats(s *Shell, args []string) error {
	if len(args) > 0 && (args[0] == "JSON" || args[0] == "json") {
		s.printf("%s\n", s.Snapshot().JSON())
		return nil
	}
	s.printf("%s", s.Snapshot().Text())
	return nil
}
