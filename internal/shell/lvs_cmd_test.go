package shell

import (
	"bytes"
	"strings"
	"testing"

	"riot/internal/lib"
)

// lvsShell builds a shell with the library installed and an output
// buffer attached.
func lvsShell(t *testing.T) (*Shell, *bytes.Buffer) {
	t.Helper()
	var out bytes.Buffer
	s := New(&out)
	if err := lib.Install(s.Design); err != nil {
		t.Fatal(err)
	}
	return s, &out
}

// TestLVSCommandClean runs LVS over an abutted assembly through the
// command interface.
func TestLVSCommandClean(t *testing.T) {
	s, out := lvsShell(t)
	if err := s.ExecAll(
		"EDIT TOP",
		"CREATE NAND g1 AT 0 0",
		"CREATE NAND g2 AT 40 5",
		"CONNECT g2.PWRL g1.PWRR",
		"CONNECT g2.GNDL g1.GNDR",
		"ABUT",
		"LVS",
	); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "netlists match") {
		t.Fatalf("LVS output = %q", out.String())
	}
}

// TestLVSCommandReportsOpen deletes a route out from under its
// declared connection and checks the command reports the open.
func TestLVSCommandReportsOpen(t *testing.T) {
	s, out := lvsShell(t)
	if err := s.ExecAll(
		"EDIT TOP",
		"CREATE SRCELL sr AT 0 40",
		"CREATE NAND nd AT 0 0",
		"ORIENT nd MXR180",
		"CONNECT nd.A sr.TAP",
		"ROUTE",
	); err != nil {
		t.Fatal(err)
	}
	// find and delete the generated route instance
	routeName := ""
	for _, in := range s.Editor.Cell.Instances {
		if strings.HasPrefix(in.Name, "ROUTE") {
			routeName = in.Name
		}
	}
	if routeName == "" {
		t.Fatal("no route instance created")
	}
	if err := s.ExecAll("DELETE "+routeName, "LVS"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "open") || !strings.Contains(got, "LVS mismatch") {
		t.Fatalf("LVS output = %q, want an open reported", got)
	}
}

// TestLVSCommandSharesVerifierCache pins the cache sharing: DRC then
// LVS on the cell under edit runs one verification, not two.
func TestLVSCommandSharesVerifierCache(t *testing.T) {
	s, _ := lvsShell(t)
	if err := s.ExecAll(
		"EDIT TOP",
		"CREATE SRCELL a AT 0 0",
		"CREATE SRCELL b AT 20 0",
		"DRC",
	); err != nil {
		t.Fatal(err)
	}
	st := s.Verifier.Stats()
	if err := s.Exec("LVS"); err != nil {
		t.Fatal(err)
	}
	after := s.Verifier.Stats()
	if after.Full != st.Full || after.Spliced != st.Spliced {
		t.Fatalf("LVS re-verified the design: %+v -> %+v", st, after)
	}
	if after.Cached != st.Cached+1 {
		t.Fatalf("LVS did not hit the verifier cache: %+v -> %+v", st, after)
	}
}

// TestLVSCommandStats pins the -stats surface: an array design reports
// its certificate coverage and the store's hit accounting, and a
// repeat of the command answers from the certificate store.
func TestLVSCommandStats(t *testing.T) {
	s, out := lvsShell(t)
	if err := s.ExecAll(
		"EDIT TOP",
		"CREATE SRCELL arr AT 0 0",
		"REPLICATE arr 4 2",
		"LVS -stats",
	); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "8/8 occurrence(s) certified under 1 distinct cell(s)") {
		t.Fatalf("LVS -stats output = %q", got)
	}
	if !strings.Contains(got, "1 sub-cell match(es) performed") {
		t.Fatalf("LVS -stats output = %q", got)
	}
	if !strings.Contains(got, "netlists match") {
		t.Fatalf("LVS -stats output = %q", got)
	}
}
