package shell

import (
	"strings"
	"testing"
	"testing/fstest"
)

// narrowGate is the gate cell with its bottom connectors moved closer
// together — the "modified leaf cell" scenario of the paper's
// REPLAY discussion.
const narrowGate = `STICKS GATE
BBOX 0 0 20 10
WIRE NM 2 0 5 20 5
WIRE NM 2 4 0 4 10
WIRE NM 2 12 0 12 10
CONNECTOR IN 0 5 NM 2 left
CONNECTOR OUT 20 5 NM 2 right
CONNECTOR B1 4 0 NM 2 bottom
CONNECTOR B2 12 0 NM 2 bottom
CONNECTOR T1 4 10 NM 2 top
CONNECTOR T2 12 10 NM 2 top
END
`

// session builds a small assembly whose final state depends on
// connector positions: b is abutted onto a by connector match.
var sessionCmds = []string{
	"READ gate.sticks",
	"EDIT TOP",
	"CREATE GATE a AT 0 0",
	"CREATE GATE b AT 31 60",
	"CONNECT b.B1 a.T1",
	"CONNECT b.B2 a.T2",
	"ABUT",
}

func runSession(t *testing.T, gateSrc string) *Shell {
	t.Helper()
	sh := New(nil)
	sh.FS = fstest.MapFS{"gate.sticks": {Data: []byte(gateSrc)}}
	sh.WriteFile = func(string, []byte) error { return nil }
	if err := sh.ExecAll(sessionCmds...); err != nil {
		t.Fatal(err)
	}
	return sh
}

// TestReplayAfterLeafEdit is the paper's claim: "Riot saves the
// commands given by the user and can re-run an editing session if some
// of the input files have changed. The replay file uses instance names
// and connector names to identify connections, and the positions are
// re-calculated."
func TestReplayAfterLeafEdit(t *testing.T) {
	// original session
	sh1 := runSession(t, gateSticks)

	// re-run the journal against the MODIFIED leaf cell
	sh2 := New(nil)
	sh2.FS = fstest.MapFS{"gate.sticks": {Data: []byte(narrowGate)}}
	sh2.WriteFile = func(string, []byte) error { return nil }
	if err := sh1.Journal.Replay(sh2.Exec); err != nil {
		t.Fatal(err)
	}

	// in both sessions the connection must hold, at different
	// positions
	check := func(sh *Shell, label string) (int, int) {
		t.Helper()
		top, _ := sh.Design.Cell("TOP")
		a, _ := top.InstanceByName("a")
		b, _ := top.InstanceByName("b")
		b1, _ := b.Connector("B1")
		t1, _ := a.Connector("T1")
		if b1.At != t1.At {
			t.Errorf("%s: connection broken: %v vs %v", label, b1.At, t1.At)
		}
		return b1.At.X, b1.At.Y
	}
	x1, _ := check(sh1, "original")
	x2, _ := check(sh2, "replayed")
	if x1 == x2 {
		t.Error("positions identical despite changed leaf cell — replay did not re-calculate")
	}
}

// TestReplayRecoversSession: a journal re-run from scratch reproduces
// the identical design (crash recovery).
func TestReplayRecoversSession(t *testing.T) {
	sh1 := runSession(t, gateSticks)

	sh2 := New(nil)
	sh2.FS = fstest.MapFS{"gate.sticks": {Data: []byte(gateSticks)}}
	sh2.WriteFile = func(string, []byte) error { return nil }
	if err := sh1.Journal.Replay(sh2.Exec); err != nil {
		t.Fatal(err)
	}
	top1, _ := sh1.Design.Cell("TOP")
	top2, _ := sh2.Design.Cell("TOP")
	if top1.BBox() != top2.BBox() {
		t.Errorf("recovered bbox %v != original %v", top2.BBox(), top1.BBox())
	}
	for _, in1 := range top1.Instances {
		in2, ok := top2.InstanceByName(in1.Name)
		if !ok {
			t.Errorf("instance %q lost", in1.Name)
			continue
		}
		if in1.Tr != in2.Tr {
			t.Errorf("instance %q at %v, recovered at %v", in1.Name, in1.Tr, in2.Tr)
		}
	}
}

// TestReplayViaCommand exercises the REPLAY shell command end to end,
// including SAVEJOURNAL.
func TestReplayViaCommand(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	if err := sh.ExecAll(sessionCmds...); err != nil {
		t.Fatal(err)
	}
	if err := sh.Exec("SAVEJOURNAL session.rpl"); err != nil {
		t.Fatal(err)
	}

	// fresh shell over the same files plus the journal
	out := &strings.Builder{}
	sh2 := New(out)
	sh2.FS = overlayFS{
		base:  fstest.MapFS{"gate.sticks": {Data: []byte(gateSticks)}},
		extra: env.files,
	}
	sh2.WriteFile = func(string, []byte) error { return nil }
	if err := sh2.Exec("REPLAY session.rpl"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "replayed") {
		t.Error("no replay report")
	}
	if _, ok := sh2.Design.Cell("TOP"); !ok {
		t.Error("replayed design missing TOP")
	}
}

// TestConnectionDestroyedByMove documents the fundamental limitation:
// "once the instances are positioned to make the connection, the fact
// that the two pieces are connected is lost, and the user is free to
// move the pieces in whatever manner is desired... connections can
// easily be inadvertently destroyed."
func TestConnectionDestroyedByMove(t *testing.T) {
	sh := runSession(t, gateSticks)
	top, _ := sh.Design.Cell("TOP")
	a, _ := top.InstanceByName("a")
	b, _ := top.InstanceByName("b")

	// the connection holds...
	b1, _ := b.Connector("B1")
	t1, _ := a.Connector("T1")
	if b1.At != t1.At {
		t.Fatal("connection not made")
	}
	// ...moving b destroys it with no warning of any kind
	if err := sh.Exec("MOVE b 3 0"); err != nil {
		t.Fatalf("the move is not even questioned: %v", err)
	}
	b1, _ = b.Connector("B1")
	if b1.At == t1.At {
		t.Error("connection survived the move?")
	}
	// but the journal carries the fix: re-running it re-makes the
	// connection (the MOVE is replayed, then... no, the journal now
	// ends with the stray MOVE; the recovery story is that the user
	// deletes the bad suffix and replays). Verify the prefix replay:
	j := sh.Journal.Lines()
	sh2 := New(nil)
	sh2.FS = fstest.MapFS{"gate.sticks": {Data: []byte(gateSticks)}}
	for _, l := range j[:len(j)-1] { // drop the stray MOVE
		if err := sh2.Exec(l); err != nil {
			t.Fatal(err)
		}
	}
	top2, _ := sh2.Design.Cell("TOP")
	a2, _ := top2.InstanceByName("a")
	b2, _ := top2.InstanceByName("b")
	b1r, _ := b2.Connector("B1")
	t1r, _ := a2.Connector("T1")
	if b1r.At != t1r.At {
		t.Error("prefix replay did not restore the connection")
	}
}
