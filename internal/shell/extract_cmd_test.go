package shell

import (
	"strings"
	"testing"
)

// TestShellExtract drives the EXTRACT command: on the cell under edit
// (through the incremental verifier) and on a named cell.
func TestShellExtract(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	if err := sh.ExecAll(
		"READ gate.sticks",
		"EDIT TOP",
		"CREATE GATE a AT 0 0",
		"CREATE GATE b AT 20 0",
		"EXTRACT",
	); err != nil {
		t.Fatal(err)
	}
	out := env.out.String()
	if !strings.Contains(out, "TOP:") || !strings.Contains(out, "net(s)") {
		t.Errorf("EXTRACT report missing summary:\n%s", out)
	}

	// named-cell form
	if err := sh.Exec("EXTRACT GATE"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(env.out.String(), "GATE:") {
		t.Errorf("EXTRACT GATE report missing:\n%s", env.out.String())
	}
}

// TestShellVerifierAcrossEditorSessions pins the editor-recreation
// regression: generations are globally unique, so a fresh editor on
// the same cell (ENDEDIT + EDIT) can never collide with a cached
// generation and serve a stale report.
func TestShellVerifierAcrossEditorSessions(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	if err := sh.ExecAll(
		"READ gate.sticks",
		"EDIT TOP",
		"EXTRACT", // primes the cache on the empty cell
	); err != nil {
		t.Fatal(err)
	}
	if err := sh.ExecAll(
		"CREATE GATE a AT 0 0",
		"ENDEDIT",
		"EDIT TOP", // a fresh editor on the same cell
	); err != nil {
		t.Fatal(err)
	}
	rep, err := sh.Verifier.Verify(sh.Editor)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CircuitErr != nil {
		t.Fatal(rep.CircuitErr)
	}
	if len(rep.Circuit.NetOf) == 0 {
		t.Fatal("stale pre-edit report served after editor recreation")
	}
}

// TestShellVerifierReuse checks that repeated DRC/EXTRACT of the cell
// under edit hits the generation-keyed cache, and that edits flow
// through it correctly (the second EXTRACT sees the moved instance).
func TestShellVerifierReuse(t *testing.T) {
	env := newEnv(t)
	sh := env.sh
	// this test pins the flat incremental splice path; the hierarchical
	// engine would serve these runs whole (Incremental=false, honestly)
	sh.Verifier.Hier = false
	if err := sh.ExecAll(
		"READ gate.sticks",
		"EDIT TOP",
		"CREATE GATE a AT 0 0",
		"CREATE GATE b AT 20 0", // abutted: IN meets OUT, one net
		"EXTRACT",
		"DRC",
	); err != nil {
		t.Fatal(err)
	}
	rep1, err := sh.Verifier.Verify(sh.Editor)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := sh.Verifier.Verify(sh.Editor)
	if err != nil {
		t.Fatal(err)
	}
	if rep1 != rep2 {
		t.Error("unchanged cell: verifier must return the cached report")
	}
	ckt1 := rep1.Circuit
	if ckt1 == nil || !ckt1.SameNet("a.OUT", "b.IN") {
		t.Fatal("abutted gates must share a net")
	}

	// move b away: nets split, and the new report must reflect it
	if err := sh.Exec("MOVE b 30 0"); err != nil {
		t.Fatal(err)
	}
	rep3, err := sh.Verifier.Verify(sh.Editor)
	if err != nil {
		t.Fatal(err)
	}
	if rep3 == rep2 {
		t.Error("edit must invalidate the cached report")
	}
	if !rep3.Incremental {
		t.Error("post-edit verify must splice")
	}
	if rep3.Circuit.SameNet("a.OUT", "b.IN") {
		t.Error("moved gate still shares a net")
	}
}
