package shell

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"io/fs"
	"path"
	"strings"

	"riot/internal/cif"
	"riot/internal/compo"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/lvs"
	"riot/internal/replay"
	"riot/internal/sticks"
	"riot/internal/verify"
)

// cmdRead loads a file of any of the three interchange formats,
// deciding by suffix: .cif, .sticks (or .stk), .comp. "Riot can read
// leaf cells defined in CIF or Sticks, and composition cells defined
// in composition format."
func cmdRead(s *Shell, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("shell: READ <file>")
	}
	if s.FS == nil {
		return fmt.Errorf("shell: no file system attached")
	}
	name := args[0]
	data, err := fs.ReadFile(s.FS, name)
	if err != nil {
		return fmt.Errorf("shell: %w", err)
	}
	switch strings.ToLower(path.Ext(name)) {
	case ".cif":
		f, err := cif.ParseString(string(data))
		if err != nil {
			return err
		}
		n := 0
		for _, sym := range f.Symbols {
			// only named symbols become menu cells; anonymous ones are
			// sub-structure
			if sym.Name == "" {
				continue
			}
			cell, err := core.NewLeafFromCIF(f, sym)
			if err != nil {
				return err
			}
			cell.SourceFile = name
			if err := s.Design.AddCell(cell); err != nil {
				return err
			}
			n++
		}
		if n == 0 && len(f.Symbols) == 1 {
			cell, err := core.NewLeafFromCIF(f, f.Symbols[0])
			if err != nil {
				return err
			}
			cell.SourceFile = name
			if err := s.Design.AddCell(cell); err != nil {
				return err
			}
			n++
		}
		s.printf("read %d cell(s) from %s\n", n, name)
	case ".sticks", ".stk":
		cells, err := sticks.ParseAll(bytes.NewReader(data))
		if err != nil {
			return err
		}
		for _, sc := range cells {
			cell, err := core.NewLeafFromSticks(sc)
			if err != nil {
				return err
			}
			cell.SourceFile = name
			if err := s.Design.AddCell(cell); err != nil {
				return err
			}
		}
		s.printf("read %d cell(s) from %s\n", len(cells), name)
	case ".comp":
		d, err := compo.Load(bytes.NewReader(data), s.FS)
		if err != nil {
			return err
		}
		n := 0
		for _, cn := range d.CellNames() {
			c, _ := d.Cell(cn)
			if err := s.Design.AddCell(c); err != nil {
				return err
			}
			n++
		}
		s.printf("read %d cell(s) from %s\n", n, name)
	default:
		return fmt.Errorf("shell: unknown file type %q (want .cif, .sticks or .comp)", name)
	}
	return nil
}

func cmdWrite(s *Shell, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("shell: WRITE <file>")
	}
	if s.WriteFile == nil {
		return fmt.Errorf("shell: no file writer attached")
	}
	var b bytes.Buffer
	if err := compo.Save(&b, s.Design); err != nil {
		return err
	}
	if err := s.WriteFile(args[0], b.Bytes()); err != nil {
		return err
	}
	s.printf("wrote %s\n", args[0])
	return nil
}

// cmdWriteCIF flattens a cell's hierarchy into CIF symbols — the path
// to mask generation. The CIF text streams through File.WriteTo when a
// CreateFile sink is attached, so a full-chip mask file never
// materializes in memory; without one it buffers through WriteFile.
func cmdWriteCIF(s *Shell, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("shell: WRITECIF <file> <cell>")
	}
	if s.CreateFile == nil && s.WriteFile == nil {
		return fmt.Errorf("shell: no file writer attached")
	}
	cell, ok := s.Design.Cell(args[1])
	if !ok {
		return fmt.Errorf("shell: no cell %q", args[1])
	}
	f, err := core.ExportCIF(cell)
	if err != nil {
		return err
	}
	if s.CreateFile != nil {
		w, err := s.CreateFile(args[0])
		if err != nil {
			return err
		}
		if _, err := f.WriteTo(w); err != nil {
			w.Close()
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
	} else {
		var b bytes.Buffer
		if _, err := f.WriteTo(&b); err != nil {
			return err
		}
		if err := s.WriteFile(args[0], b.Bytes()); err != nil {
			return err
		}
	}
	s.printf("wrote %s (%d symbols)\n", args[0], len(f.Symbols))
	return nil
}

func cmdWriteSticks(s *Shell, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("shell: WRITESTICKS <file> <cell>")
	}
	if s.WriteFile == nil {
		return fmt.Errorf("shell: no file writer attached")
	}
	cell, ok := s.Design.Cell(args[1])
	if !ok {
		return fmt.Errorf("shell: no cell %q", args[1])
	}
	if cell.Kind != core.LeafSticks {
		return fmt.Errorf("shell: %q is not a symbolic cell", args[1])
	}
	var b bytes.Buffer
	if err := sticks.Write(&b, cell.Sticks); err != nil {
		return err
	}
	if err := s.WriteFile(args[0], b.Bytes()); err != nil {
		return err
	}
	s.printf("wrote %s\n", args[0])
	return nil
}

func cmdCells(s *Shell, args []string) error {
	for _, n := range s.Design.CellNames() {
		c, _ := s.Design.Cell(n)
		b := c.BBox()
		s.printf("%-16s %-11s %4dx%-4d lambda  %d connectors\n",
			n, c.Kind, b.W()/lam(1), b.H()/lam(1), len(c.Connectors()))
	}
	return nil
}

func cmdShow(s *Shell, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("shell: SHOW <cell>")
	}
	c, ok := s.Design.Cell(args[0])
	if !ok {
		return fmt.Errorf("shell: no cell %q", args[0])
	}
	b := c.BBox()
	s.printf("cell %s (%s) bbox %v\n", c.Name, c.Kind, b)
	for _, in := range c.Instances {
		s.printf("  instance %-12s %-12s %v %dx%d\n", in.Name, in.Cell.Name, in.Tr, in.Nx, in.Ny)
	}
	for _, cn := range c.Connectors() {
		s.printf("  connector %-12s at %v %v w=%d side=%v\n", cn.Name, cn.At, cn.Layer, cn.Width, cn.Side)
	}
	return nil
}

func cmdDelCell(s *Shell, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("shell: DELCELL <cell>")
	}
	if s.Editor != nil && s.Editor.Cell.Name == args[0] {
		return fmt.Errorf("shell: cell %q is under edit", args[0])
	}
	return s.Design.DeleteCell(args[0])
}

func cmdRename(s *Shell, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("shell: RENAME <old> <new>")
	}
	return s.Design.RenameCell(args[0], args[1])
}

func cmdEdit(s *Shell, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("shell: EDIT <cell>")
	}
	if s.Editor != nil {
		return fmt.Errorf("shell: already editing %q (ENDEDIT first)", s.Editor.Cell.Name)
	}
	cell, ok := s.Design.Cell(args[0])
	if !ok {
		cell = core.NewComposition(args[0])
		if err := s.Design.AddCell(cell); err != nil {
			return err
		}
	}
	ed, err := core.NewEditor(s.Design, cell)
	if err != nil {
		return err
	}
	s.Editor = ed
	s.printf("editing %s\n", cell.Name)
	return nil
}

func cmdEndEdit(s *Shell, args []string) error {
	if s.Editor == nil {
		return fmt.Errorf("shell: no cell under edit")
	}
	s.printf("closed %s\n", s.Editor.Cell.Name)
	s.Editor = nil
	return nil
}

// cmdCreate parses: CREATE <cell> [<inst>] [AT x y] [ORIENT o]
// [ARRAY nx ny [sx sy]] — mirroring the paper's CREATE command with
// optional replication counts, spacing, rotation and mirroring.
func cmdCreate(s *Shell, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("shell: CREATE <cell> [<inst>] [AT x y] [ORIENT o] [ARRAY nx ny [sx sy]]")
	}
	cellName := args[0]
	instName := ""
	i := 1
	if i < len(args) && !isKeyword(args[i]) {
		instName = args[i]
		i++
	}
	at := geom.Point{}
	orient := geom.R0
	nx, ny, sx, sy := 1, 1, 0, 0
	for i < len(args) {
		switch strings.ToUpper(args[i]) {
		case "AT":
			x, err := argInt(args, i+1)
			if err != nil {
				return err
			}
			y, err := argInt(args, i+2)
			if err != nil {
				return err
			}
			at = geom.Pt(lam(x), lam(y))
			i += 3
		case "ORIENT":
			if i+1 >= len(args) {
				return fmt.Errorf("shell: ORIENT needs a value")
			}
			o, err := geom.ParseOrient(strings.ToUpper(args[i+1]))
			if err != nil {
				return err
			}
			orient = o
			i += 2
		case "ARRAY":
			var err error
			nx, err = argInt(args, i+1)
			if err != nil {
				return err
			}
			ny, err = argInt(args, i+2)
			if err != nil {
				return err
			}
			i += 3
			if i+1 < len(args) && !isKeyword(args[i]) {
				sx, err = argInt(args, i)
				if err != nil {
					return err
				}
				sy, err = argInt(args, i+1)
				if err != nil {
					return err
				}
				sx, sy = lam(sx), lam(sy)
				i += 2
			}
		default:
			return fmt.Errorf("shell: unexpected %q in CREATE", args[i])
		}
	}
	in, err := s.Editor.CreateInstance(cellName, instName, geom.MakeTransform(orient, at), nx, ny, sx, sy)
	if err != nil {
		return err
	}
	s.printf("created %s (%s) at %v\n", in.Name, cellName, in.Tr)
	return nil
}

func isKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "AT", "ORIENT", "ARRAY":
		return true
	}
	return false
}

func cmdMove(s *Shell, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("shell: MOVE <inst> <dx> <dy>")
	}
	in, err := s.instance(args[0])
	if err != nil {
		return err
	}
	dx, err := argInt(args, 1)
	if err != nil {
		return err
	}
	dy, err := argInt(args, 2)
	if err != nil {
		return err
	}
	s.Editor.MoveInstance(in, geom.Pt(lam(dx), lam(dy)))
	return nil
}

func cmdPlace(s *Shell, args []string) error {
	if len(args) != 3 {
		return fmt.Errorf("shell: PLACE <inst> <x> <y>")
	}
	in, err := s.instance(args[0])
	if err != nil {
		return err
	}
	x, err := argInt(args, 1)
	if err != nil {
		return err
	}
	y, err := argInt(args, 2)
	if err != nil {
		return err
	}
	s.Editor.PlaceInstance(in, geom.MakeTransform(in.Tr.O, geom.Pt(lam(x), lam(y))))
	return nil
}

func cmdOrient(s *Shell, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("shell: ORIENT <inst> <orientation>")
	}
	in, err := s.instance(args[0])
	if err != nil {
		return err
	}
	o, err := geom.ParseOrient(strings.ToUpper(args[1]))
	if err != nil {
		return err
	}
	s.Editor.OrientInstance(in, o)
	return nil
}

func cmdReplicate(s *Shell, args []string) error {
	if len(args) != 3 && len(args) != 5 {
		return fmt.Errorf("shell: REPLICATE <inst> <nx> <ny> [sx sy]")
	}
	in, err := s.instance(args[0])
	if err != nil {
		return err
	}
	nx, err := argInt(args, 1)
	if err != nil {
		return err
	}
	ny, err := argInt(args, 2)
	if err != nil {
		return err
	}
	sx, sy := 0, 0
	if len(args) == 5 {
		sx, err = argInt(args, 3)
		if err != nil {
			return err
		}
		sy, err = argInt(args, 4)
		if err != nil {
			return err
		}
		sx, sy = lam(sx), lam(sy)
	}
	return s.Editor.Replicate(in, nx, ny, sx, sy)
}

func cmdDelete(s *Shell, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("shell: DELETE <inst>")
	}
	in, err := s.instance(args[0])
	if err != nil {
		return err
	}
	return s.Editor.DeleteInstance(in)
}

func cmdConnect(s *Shell, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("shell: CONNECT <inst>.<conn> <inst>.<conn>")
	}
	fi, fc, err := splitConnRef(args[0])
	if err != nil {
		return err
	}
	ti, tc, err := splitConnRef(args[1])
	if err != nil {
		return err
	}
	from, err := s.instance(fi)
	if err != nil {
		return err
	}
	to, err := s.instance(ti)
	if err != nil {
		return err
	}
	return s.Editor.AddConnection(from, fc, to, tc)
}

func cmdAbutLink(s *Shell, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("shell: ABUTLINK <from> <to>")
	}
	from, err := s.instance(args[0])
	if err != nil {
		return err
	}
	to, err := s.instance(args[1])
	if err != nil {
		return err
	}
	return s.Editor.AddAbutLink(from, to)
}

func cmdBus(s *Shell, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("shell: BUS <from> <to>")
	}
	from, err := s.instance(args[0])
	if err != nil {
		return err
	}
	to, err := s.instance(args[1])
	if err != nil {
		return err
	}
	n, err := s.Editor.AddBus(from, to)
	if err != nil {
		return err
	}
	s.printf("%d connections pending\n", n)
	return nil
}

func cmdConnections(s *Shell, args []string) error {
	for i, c := range s.Editor.Pending {
		s.printf("%2d: %s\n", i, c)
	}
	return nil
}

func cmdUnconnect(s *Shell, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("shell: UNCONNECT <index>")
	}
	i, err := argInt(args, 0)
	if err != nil {
		return err
	}
	return s.Editor.DeleteConnection(i)
}

func cmdClear(s *Shell, args []string) error {
	s.Editor.ClearConnections()
	return nil
}

func cmdAbut(s *Shell, args []string) error {
	overlap := false
	if len(args) == 1 && strings.EqualFold(args[0], "OVERLAP") {
		overlap = true
	} else if len(args) != 0 {
		return fmt.Errorf("shell: ABUT [OVERLAP]")
	}
	warns, err := s.Editor.Abut(overlap)
	if err != nil {
		return err
	}
	for _, w := range warns {
		s.printf("warning: %s\n", w)
	}
	return nil
}

func cmdRoute(s *Shell, args []string) error {
	opt := core.RouteOptions{}
	if len(args) == 1 && strings.EqualFold(args[0], "NOMOVE") {
		opt.NoMove = true
	} else if len(args) != 0 {
		return fmt.Errorf("shell: ROUTE [NOMOVE]")
	}
	res, err := s.Editor.RouteConnect(opt)
	if err != nil {
		return err
	}
	for _, w := range res.Warnings {
		s.printf("warning: %s\n", w)
	}
	s.printf("route cell %s: %d tracks, %d channel(s), height %d lambda\n",
		res.RouteInst.Cell.Name, res.River.Tracks, res.River.Channels, res.River.Height)
	return nil
}

func cmdStretch(s *Shell, args []string) error {
	res, err := s.Editor.StretchConnect()
	if err != nil {
		return err
	}
	for _, w := range res.Warnings {
		s.printf("warning: %s\n", w)
	}
	s.printf("stretched into %s\n", res.NewCell.Name)
	return nil
}

func cmdBringOut(s *Shell, args []string) error {
	if len(args) < 3 {
		return fmt.Errorf("shell: BRINGOUT <inst> <side> <conn>...")
	}
	in, err := s.instance(args[0])
	if err != nil {
		return err
	}
	side, err := geom.ParseSide(strings.ToLower(args[1]))
	if err != nil {
		return err
	}
	ri, err := s.Editor.BringOut(in, args[2:], side)
	if err != nil {
		return err
	}
	if ri == nil {
		s.printf("connectors already on the cell edge\n")
	} else {
		s.printf("brought out via %s\n", ri.Name)
	}
	return nil
}

func cmdSet(s *Shell, args []string) error {
	if len(args) == 2 && strings.EqualFold(args[0], "TRACKS") {
		n, err := argInt(args, 1)
		if err != nil {
			return err
		}
		if s.Editor == nil {
			return fmt.Errorf("shell: SET TRACKS needs a cell under edit")
		}
		s.Editor.TracksPerChannel = n
		return nil
	}
	return fmt.Errorf("shell: SET TRACKS <n>")
}

func cmdPlot(s *Shell, args []string) error {
	if len(args) != 1 && len(args) != 2 {
		return fmt.Errorf("shell: PLOT <file> [<cell>]")
	}
	if s.Plot == nil {
		return fmt.Errorf("shell: no plotter attached")
	}
	var cell *core.Cell
	if len(args) == 2 {
		c, ok := s.Design.Cell(args[1])
		if !ok {
			return fmt.Errorf("shell: no cell %q", args[1])
		}
		cell = c
	} else {
		if s.Editor == nil {
			return fmt.Errorf("shell: PLOT with no cell argument needs a cell under edit")
		}
		cell = s.Editor.Cell
	}
	if err := s.Plot(cell, args[0]); err != nil {
		return err
	}
	s.printf("plotted %s to %s\n", cell.Name, args[0])
	return nil
}

// snapTarget resolves a DRC/EXTRACT/LVS target — an explicit name, or
// the cell under edit — and freezes it under the shared-design guard:
// the editor snapshot (generation-keyed, with declared connections)
// when the target is under edit, the design's frozen clone otherwise.
// Exactly one of snap/cell is non-nil. The verification itself then
// runs against the immutable frozen state with the guard released, so
// a server's other sessions keep editing while this one verifies.
func snapTarget(s *Shell, cmd string, args []string) (snap *core.Snapshot, cell *core.Cell, err error) {
	if s.Guard != nil {
		s.Guard.RLock()
		defer s.Guard.RUnlock()
	}
	switch len(args) {
	case 0:
		if s.Editor == nil {
			return nil, nil, fmt.Errorf("shell: %s with no cell argument needs a cell under edit", cmd)
		}
		return s.Editor.Snapshot(), nil, nil
	case 1:
		c, ok := s.Design.Cell(args[0])
		if !ok {
			return nil, nil, fmt.Errorf("shell: no cell %q", args[0])
		}
		if s.Editor != nil && s.Editor.Cell == c {
			return s.Editor.Snapshot(), nil, nil
		}
		return nil, s.Design.SnapshotCell(c), nil
	}
	return nil, nil, fmt.Errorf("shell: %s [<cell>]", cmd)
}

// verifyReport runs the session verifier over a frozen target: the
// generation-keyed incremental path for an editor snapshot, a
// cache-priming full run for a bare cell.
func (s *Shell) verifyReport(snap *core.Snapshot, cell *core.Cell) (*verify.Report, error) {
	if snap != nil {
		return s.Verifier.VerifySnapshot(snap)
	}
	return s.Verifier.VerifyCell(cell)
}

// VerifyNamed verifies one cell by name through the session's snapshot
// discipline — the editor's generation-keyed path when the cell is
// under edit, the design's frozen clone otherwise. Programmatic
// callers (riot.Session, the design server) use it so every surface
// verifies identically.
func (s *Shell) VerifyNamed(name string) (*verify.Report, error) {
	snap, cell, err := snapTarget(s, "VERIFY", []string{name})
	if err != nil {
		return nil, err
	}
	return s.verifyReport(snap, cell)
}

// LVSNamed netlist-compares one cell by name through the session's
// snapshot discipline, like VerifyNamed.
func (s *Shell) LVSNamed(name string) (*lvs.Result, error) {
	snap, cell, err := snapTarget(s, "LVS", []string{name})
	if err != nil {
		return nil, err
	}
	if snap != nil {
		return s.LVS.CheckSnapshot(snap, &s.Verifier)
	}
	return s.LVS.CheckCell(cell, &s.Verifier)
}

// cmdDRC runs the design-rule checker over a cell's flattened mask
// geometry — the whole-design verification step the paper's workflow
// ends with. With no argument it checks the cell under edit; repeated
// checks of the cell under edit reuse the incremental verifier cache.
func cmdDRC(s *Shell, args []string) error {
	snap, cell, err := snapTarget(s, "DRC", args)
	if err != nil {
		return err
	}
	name := targetName(snap, cell)
	rep, err := s.verifyReport(snap, cell)
	if err != nil {
		return err
	}
	vs := rep.Violations
	if len(vs) == 0 {
		s.printf("%s: no design-rule violations\n", name)
		return nil
	}
	for _, v := range vs {
		s.printf("%s\n", v)
	}
	s.printf("%s: %d design-rule violation(s)\n", name, len(vs))
	return nil
}

// targetName names a frozen verification target for output.
func targetName(snap *core.Snapshot, cell *core.Cell) string {
	if snap != nil {
		return snap.Cell.Name
	}
	return cell.Name
}

// cmdExtract recovers a cell's transistor-level circuit — the
// electrical half of the verification loop. Like DRC it reuses the
// incremental verifier cache for the cell under edit.
func cmdExtract(s *Shell, args []string) error {
	snap, cell, err := snapTarget(s, "EXTRACT", args)
	if err != nil {
		return err
	}
	name := targetName(snap, cell)
	rep, err := s.verifyReport(snap, cell)
	if err != nil {
		return err
	}
	if rep.CircuitErr != nil {
		return rep.CircuitErr
	}
	ckt := rep.Circuit
	s.printf("%s: %d net(s), %d transistor(s), %d label(s)\n",
		name, ckt.NetCount, len(ckt.Transistors), len(ckt.NetOf))
	return nil
}

// cmdLVS compares a cell's extracted netlist against its declared
// composition — the layout-versus-schematic leg of the verification
// triad. The layout side shares the incremental verifier cache with
// DRC and EXTRACT; for the cell under edit, the session's retained
// connection records participate in the reference. -stats additionally
// prints the hierarchical-certificate accounting: how many occurrences
// compared pre-collapsed, how often the session's certificate store
// answered without re-matching a sub-cell, and the hierarchical
// verification engine's run counters (fast runs, fallbacks, per-cell
// certificates built vs reloaded).
func cmdLVS(s *Shell, args []string) error {
	stats := false
	if len(args) > 0 && args[0] == "-stats" {
		stats = true
		args = args[1:]
	}
	snap, cell, err := snapTarget(s, "LVS", args)
	if err != nil {
		return err
	}
	name := targetName(snap, cell)
	var res *lvs.Result
	if snap != nil {
		res, err = s.LVS.CheckSnapshot(snap, &s.Verifier)
	} else {
		res, err = s.LVS.CheckCell(cell, &s.Verifier)
	}
	if err != nil {
		return err
	}
	if stats {
		st, store := res.Cert, s.LVS.Certs.Stats()
		s.printf("%s: certificates: %d/%d occurrence(s) certified under %d distinct cell(s)\n",
			name, st.Certified, st.Occurrences, st.Cells)
		s.printf("%s: certificate store: %d hit(s), %d sub-cell match(es) performed\n",
			name, store.Hits, store.Matched)
		s.printf("%s: %s\n", name, s.Verifier.HierStats())
		if d := s.Verifier.HierDeclineInfo(); d != nil {
			s.printf("%s: hier declined: condition=%s cell=%q placement=%d: %v\n",
				name, d.Cond, d.Cell, d.Placement, d)
		}
		if s.Cache != nil {
			cst := s.Cache.Stats()
			s.printf("%s: persistent store: %d certificate(s) and %d shard(s) loaded from disk, %d disk hit(s), %d corrupt entr(ies) quarantined (%d moved aside), %d miss(es), %d put(s), %d put error(s)\n",
				name, store.DiskHits, s.Verifier.FlattenDiskStats(), cst.Hits, cst.Corrupt, cst.Quarantined, cst.Misses, cst.Puts, cst.PutErrors)
		}
		if s.Faults != nil {
			s.printf("%s: faults: %s\n", name, s.Faults)
		}
		if st.Fallback {
			s.printf("%s: certified comparison fell back to the flat diagnosis\n", name)
		}
	}
	if res.Clean {
		s.printf("%s: netlists match (%d nets, %d devices)\n", name, res.RefNets, res.RefDevices)
		return nil
	}
	for _, mm := range res.Mismatches {
		s.printf("%s\n", mm)
	}
	s.printf("%s: %d LVS mismatch(es)\n", name, len(res.Mismatches))
	return nil
}

func cmdReplay(s *Shell, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("shell: REPLAY <file>")
	}
	if s.FS == nil {
		return fmt.Errorf("shell: no file system attached")
	}
	data, err := fs.ReadFile(s.FS, args[0])
	if err != nil {
		return fmt.Errorf("shell: %w", err)
	}
	j, err := replay.Load(bytes.NewReader(data))
	if err != nil {
		return err
	}
	if err := j.Replay(s.Exec); err != nil {
		return err
	}
	s.printf("replayed %d commands from %s\n", j.Len(), args[0])
	return nil
}

func cmdSaveJournal(s *Shell, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("shell: SAVEJOURNAL <file>")
	}
	if s.WriteFile == nil {
		return fmt.Errorf("shell: no file writer attached")
	}
	var b bytes.Buffer
	if err := s.Journal.Save(&b); err != nil {
		return err
	}
	if err := s.WriteFile(args[0], b.Bytes()); err != nil {
		return err
	}
	s.printf("saved %d commands to %s\n", s.Journal.Len(), args[0])
	return nil
}

// newLineScanner wraps bufio.Scanner with a bigger buffer.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return sc
}
