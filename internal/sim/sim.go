// Package sim is a switch-level simulator for extracted nMOS circuits,
// in the spirit of the simulators the Sticks format fed ("Sticks ... is
// also used as input to simulation"). It models ratioed nMOS logic:
// enhancement transistors conduct when their gate is high, depletion
// loads always conduct but pull up weakly, and a conducting path to
// ground overpowers any pullup.
//
// The simulator is used by the test suite to run truth tables on the
// library gates after extraction — closing the loop from symbolic
// layout through composition to electrical behaviour.
package sim

import (
	"fmt"

	"riot/internal/extract"
	"riot/internal/sticks"
)

// Level is a node value.
type Level uint8

// The three node levels.
const (
	L0 Level = iota
	L1
	LX // unknown / undriven
)

// String renders the level as "0", "1" or "X".
func (l Level) String() string {
	switch l {
	case L0:
		return "0"
	case L1:
		return "1"
	default:
		return "X"
	}
}

// Simulator evaluates an extracted circuit.
type Simulator struct {
	ckt *extract.Circuit
	vdd int
	gnd int
}

// New builds a simulator; vddLabel and gndLabel name connectors on the
// supply rails (e.g. "PWRL" and "GNDL").
func New(ckt *extract.Circuit, vddLabel, gndLabel string) (*Simulator, error) {
	vdd, ok := ckt.Net(vddLabel)
	if !ok {
		return nil, fmt.Errorf("sim: no net for %q", vddLabel)
	}
	gnd, ok := ckt.Net(gndLabel)
	if !ok {
		return nil, fmt.Errorf("sim: no net for %q", gndLabel)
	}
	if vdd == gnd {
		return nil, fmt.Errorf("sim: power and ground are shorted")
	}
	return &Simulator{ckt: ckt, vdd: vdd, gnd: gnd}, nil
}

// Eval computes steady-state node levels for the given input levels
// (keyed by connector label). It returns the level of every labelled
// connector.
func (s *Simulator) Eval(inputs map[string]Level) (map[string]Level, error) {
	fixed := map[int]Level{s.vdd: L1, s.gnd: L0}
	for name, lv := range inputs {
		n, ok := s.ckt.Net(name)
		if !ok {
			return nil, fmt.Errorf("sim: no net for input %q", name)
		}
		if prev, dup := fixed[n]; dup && prev != lv {
			return nil, fmt.Errorf("sim: input %q conflicts with another driver of the same net", name)
		}
		fixed[n] = lv
	}

	level := make([]Level, s.ckt.NetCount)
	for i := range level {
		level[i] = LX
	}
	for n, lv := range fixed {
		level[n] = lv
	}

	// relax to a fixpoint: conduction depends on gate levels, levels
	// depend on conduction
	for iter := 0; iter < s.ckt.NetCount+len(s.ckt.Transistors)+2; iter++ {
		enhOn := func(t extract.Transistor) bool {
			return t.Kind == sticks.Enhancement && level[t.Gate] == L1
		}
		anyOn := func(t extract.Transistor) bool {
			return t.Kind == sticks.Depletion || enhOn(t)
		}
		// strong 0: reachable from ground through ON enhancement
		// devices only — depletion loads are weak and cannot sink a
		// node to ground; externally driven nets block propagation
		strong0 := s.reach(s.gnd, enhOn, fixed)
		// weak 1: reachable from power through any conducting device
		weak1 := s.reach(s.vdd, anyOn, fixed)

		changed := false
		for n := 0; n < s.ckt.NetCount; n++ {
			want := level[n]
			if lv, isFixed := fixed[n]; isFixed {
				want = lv
			} else if strong0[n] {
				want = L0 // ground wins in ratioed nMOS
			} else if weak1[n] {
				want = L1
			} else {
				want = LX
			}
			if want != level[n] {
				level[n] = want
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	out := map[string]Level{}
	for name := range s.ckt.NetOf {
		n, _ := s.ckt.Net(name)
		out[name] = level[n]
	}
	return out, nil
}

// reach BFS-es the conduction graph from a source net. Externally
// driven (fixed) nets are marked reachable but not expanded through —
// a supply rail or an input pin clamps its own value rather than
// relaying someone else's.
func (s *Simulator) reach(src int, conducting func(extract.Transistor) bool, fixed map[int]Level) []bool {
	seen := make([]bool, s.ckt.NetCount)
	seen[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if _, isFixed := fixed[n]; isFixed && n != src {
			continue
		}
		for _, t := range s.ckt.Transistors {
			if !conducting(t) {
				continue
			}
			var other int
			switch n {
			case t.A:
				other = t.B
			case t.B:
				other = t.A
			default:
				continue
			}
			if !seen[other] {
				seen[other] = true
				queue = append(queue, other)
			}
		}
	}
	return seen
}

// TruthTable evaluates the circuit for every combination of the given
// inputs and returns the output levels in input-counting order (input
// 0 is the least significant bit).
func (s *Simulator) TruthTable(inputs []string, output string) ([]Level, error) {
	rows := 1 << len(inputs)
	out := make([]Level, rows)
	for v := 0; v < rows; v++ {
		vec := map[string]Level{}
		for i, name := range inputs {
			if v&(1<<i) != 0 {
				vec[name] = L1
			} else {
				vec[name] = L0
			}
		}
		res, err := s.Eval(vec)
		if err != nil {
			return nil, err
		}
		lv, ok := res[output]
		if !ok {
			return nil, fmt.Errorf("sim: no output %q", output)
		}
		out[v] = lv
	}
	return out, nil
}
