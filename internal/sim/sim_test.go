package sim

import (
	"testing"

	"riot/internal/core"
	"riot/internal/extract"
	"riot/internal/lib"
)

func extractGate(t *testing.T, name string) *extract.Circuit {
	t.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	cell, ok := d.Cell(name)
	if !ok {
		t.Fatalf("no cell %s", name)
	}
	ckt, err := extract.FromCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	return ckt
}

// TestNANDTruthTable closes the loop: the symbolic NAND laid out "in
// REST" extracts to a transistor netlist whose switch-level behaviour
// is exactly NAND.
func TestNANDTruthTable(t *testing.T) {
	ckt := extractGate(t, "NAND")
	if len(ckt.Transistors) != 3 {
		t.Fatalf("transistors = %d, want 3", len(ckt.Transistors))
	}
	s, err := New(ckt, "PWRL", "GNDL")
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.TruthTable([]string{"A", "B"}, "OUT")
	if err != nil {
		t.Fatal(err)
	}
	want := []Level{L1, L1, L1, L0} // NAND: only A=1,B=1 gives 0
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %02b: OUT = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestOR4TruthTable: the four-input OR (NOR + inverter) behaves as OR
// on all sixteen input rows.
func TestOR4TruthTable(t *testing.T) {
	ckt := extractGate(t, "OR4")
	// 4 NOR pulldowns + NOR pullup + inverter pulldown + pullup
	if len(ckt.Transistors) != 7 {
		t.Fatalf("transistors = %d, want 7", len(ckt.Transistors))
	}
	s, err := New(ckt, "PWRL", "GNDL")
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.TruthTable([]string{"IN0", "IN1", "IN2", "IN3"}, "OUT")
	if err != nil {
		t.Fatal(err)
	}
	for v, lv := range got {
		want := L0
		if v != 0 {
			want = L1
		}
		if lv != want {
			t.Errorf("row %04b: OUT = %v, want %v", v, lv, want)
		}
	}
}

func TestRailsConnectAcross(t *testing.T) {
	// the NAND's left and right rail connectors are one net each
	ckt := extractGate(t, "NAND")
	if !ckt.SameNet("PWRL", "PWRR") {
		t.Error("power rail not continuous")
	}
	if !ckt.SameNet("GNDL", "GNDR") {
		t.Error("ground rail not continuous")
	}
	if ckt.SameNet("PWRL", "GNDL") {
		t.Error("power and ground shorted")
	}
	if ckt.SameNet("A", "B") {
		t.Error("inputs shorted")
	}
	if ckt.SameNet("A", "OUT") || ckt.SameNet("B", "OUT") {
		t.Error("input shorted to output")
	}
}

func TestSimulatorErrors(t *testing.T) {
	ckt := extractGate(t, "NAND")
	if _, err := New(ckt, "NOPE", "GNDL"); err == nil {
		t.Error("unknown vdd accepted")
	}
	if _, err := New(ckt, "PWRL", "PWRL"); err == nil {
		t.Error("vdd == gnd accepted")
	}
	s, _ := New(ckt, "PWRL", "GNDL")
	if _, err := s.Eval(map[string]Level{"NOPE": L1}); err == nil {
		t.Error("unknown input accepted")
	}
}

func TestUndrivenInputIsX(t *testing.T) {
	ckt := extractGate(t, "NAND")
	s, _ := New(ckt, "PWRL", "GNDL")
	res, err := s.Eval(map[string]Level{"A": L1}) // B undriven
	if err != nil {
		t.Fatal(err)
	}
	if res["B"] != LX {
		t.Errorf("undriven B = %v", res["B"])
	}
}

func TestLevelString(t *testing.T) {
	if L0.String() != "0" || L1.String() != "1" || LX.String() != "X" {
		t.Error("level names wrong")
	}
}
