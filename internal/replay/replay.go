// Package replay implements Riot's REPLAY facility, its "inexpensive
// solution" to the positional-connection problem: "Riot saves the
// commands given by the user and can re-run an editing session if some
// of the input files have changed. The replay file uses instance names
// and connector names to identify connections, and the positions are
// re-calculated, thereby avoiding the problems with differently-shaped
// cells. The replay also enables users to recover an
// abnormally-terminated editing session or an accidentally-deleted
// file."
//
// A Journal is an append-only log of textual commands (the same
// language the keyboard interface speaks). Replaying feeds the lines
// back through any Runner — normally a fresh shell over re-read input
// files.
package replay

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Runner executes one journal line. The shell's Exec method satisfies
// this signature.
type Runner func(line string) error

// Journal is a recorded editing session.
type Journal struct {
	lines []string
}

// New returns an empty journal.
func New() *Journal { return &Journal{} }

// Record appends a command to the journal. Blank lines are ignored.
func (j *Journal) Record(line string) {
	line = strings.TrimRight(line, "\r\n")
	if strings.TrimSpace(line) == "" {
		return
	}
	j.lines = append(j.lines, line)
}

// Len returns the number of recorded commands.
func (j *Journal) Len() int { return len(j.lines) }

// Lines returns a copy of the recorded commands.
func (j *Journal) Lines() []string {
	return append([]string(nil), j.lines...)
}

// Reset discards all recorded commands.
func (j *Journal) Reset() { j.lines = nil }

// Save writes the journal, one command per line.
func (j *Journal) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# riot replay journal")
	for _, l := range j.lines {
		if _, err := fmt.Fprintln(bw, l); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a journal saved with Save. Comment lines (#) and blank
// lines are skipped.
func Load(r io.Reader) (*Journal, error) {
	j := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if t := strings.TrimSpace(line); t == "" || strings.HasPrefix(t, "#") {
			continue
		}
		j.lines = append(j.lines, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	return j, nil
}

// Replay re-runs the journal through the runner. It stops at the first
// failing command, reporting which line failed; the commands before it
// have already taken effect, which is exactly the recovery behaviour
// the paper describes for crashed sessions.
func (j *Journal) Replay(run Runner) error {
	for i, l := range j.lines {
		if err := run(l); err != nil {
			return fmt.Errorf("replay: command %d (%q): %w", i+1, l, err)
		}
	}
	return nil
}
