package replay

import (
	"errors"
	"strings"
	"testing"
)

func TestRecordAndLines(t *testing.T) {
	j := New()
	j.Record("EDIT TOP")
	j.Record("  ")
	j.Record("CREATE GATE a\n")
	if j.Len() != 2 {
		t.Fatalf("len = %d", j.Len())
	}
	lines := j.Lines()
	if lines[0] != "EDIT TOP" || lines[1] != "CREATE GATE a" {
		t.Errorf("lines = %v", lines)
	}
	// Lines returns a copy
	lines[0] = "HACKED"
	if j.Lines()[0] == "HACKED" {
		t.Error("Lines exposes internal state")
	}
	j.Reset()
	if j.Len() != 0 {
		t.Error("Reset failed")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	j := New()
	j.Record("EDIT TOP")
	j.Record("CREATE GATE a AT 0 0")
	var b strings.Builder
	if err := j.Save(&b); err != nil {
		t.Fatal(err)
	}
	j2, err := Load(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(j2.Lines(), "|") != strings.Join(j.Lines(), "|") {
		t.Errorf("round trip: %v vs %v", j2.Lines(), j.Lines())
	}
}

func TestLoadSkipsCommentsAndBlanks(t *testing.T) {
	j, err := Load(strings.NewReader("# header\n\nCMD ONE\n  # another\nCMD TWO\n"))
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Errorf("len = %d: %v", j.Len(), j.Lines())
	}
}

func TestReplayRunsInOrder(t *testing.T) {
	j := New()
	j.Record("a")
	j.Record("b")
	j.Record("c")
	var got []string
	err := j.Replay(func(l string) error {
		got = append(got, l)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, "") != "abc" {
		t.Errorf("order = %v", got)
	}
}

func TestReplayStopsAtFirstError(t *testing.T) {
	j := New()
	j.Record("ok")
	j.Record("boom")
	j.Record("never")
	var got []string
	err := j.Replay(func(l string) error {
		got = append(got, l)
		if l == "boom" {
			return errors.New("kaput")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if !strings.Contains(err.Error(), "command 2") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("uninformative error: %v", err)
	}
	if len(got) != 2 {
		t.Errorf("ran %d commands, want 2", len(got))
	}
}
