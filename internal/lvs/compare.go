package lvs

import (
	"fmt"
	"sort"
	"strings"
)

// Kind classifies a mismatch.
type Kind string

// The mismatch kinds, in reporting order.
const (
	// KindShort: two nets the reference declares distinct are one net
	// in the layout (unsanctioned material contact).
	KindShort Kind = "short"
	// KindOpen: one declared net is several nets in the layout (a
	// connection the composition declares is not realized).
	KindOpen Kind = "open"
	// KindSwapped: two connector pairs are crossed — each side joins
	// the four labels into two nets, but pairs them differently.
	KindSwapped Kind = "swapped"
	// KindDevice: a device equivalence class has different member
	// counts on the two sides (a missing, extra or rewired device).
	KindDevice Kind = "device"
	// KindNet: a net equivalence class has different member counts on
	// the two sides.
	KindNet Kind = "net"
	// KindAmbiguous: the partitions balance but no explicit matching
	// was found within budget — structurally suspect, never silent.
	KindAmbiguous Kind = "ambiguous"
)

// kindRank orders mismatches for stable reports.
var kindRank = map[Kind]int{
	KindShort: 0, KindOpen: 1, KindSwapped: 2,
	KindDevice: 3, KindNet: 4, KindAmbiguous: 5,
}

// Mismatch is one structured diagnostic. RefNet and LayNet are
// exemplar nets in the respective netlists (-1 when not applicable),
// Labels the connector labels involved, Devices renderings of the
// devices on the offending nets, and Hint a one-line explanation.
type Mismatch struct {
	Kind    Kind
	RefNet  int
	LayNet  int
	Labels  []string
	Devices []string
	Hint    string
}

// String renders the mismatch for reports.
func (mm Mismatch) String() string {
	s := string(mm.Kind)
	if len(mm.Labels) > 0 {
		s += " [" + strings.Join(mm.Labels, " ") + "]"
	}
	if mm.Hint != "" {
		s += ": " + mm.Hint
	}
	return s
}

// Result is one comparison's outcome. Clean means the reduced
// netlists were proven isomorphic with an explicit net matching.
type Result struct {
	Clean      bool
	Mismatches []Mismatch
	// RefNets/LayNets count the electrically meaningful (pruned,
	// reduced) nets per side; RefDevices/LayDevices the reduced
	// devices.
	RefNets, LayNets       int
	RefDevices, LayDevices int
	// NetMap maps reference nets to layout nets when Clean (reduced
	// net id spaces; interior series nets are absent). Under a
	// certificate-collapsed comparison the spaces are the collapsed
	// ones: certified interiors are absent and hub nets appended.
	NetMap map[int]int
	// Cert is the hierarchical-certificate accounting of the run (zero
	// on a plain flat comparison).
	Cert CertStats
}

// Compare matches a reference netlist against a layout netlist:
// series/parallel reduction, label-anchor analysis, shared partition
// refinement, and — when the partitions balance — an explicit
// matching. Mismatches come back most-specific first (shorts, opens,
// swaps before bare class imbalances) in a deterministic order.
func Compare(refN, layN *Netlist) *Result {
	ref, lay := reduce(refN), reduce(layN)
	res := &Result{
		RefNets: ref.aliveCount, LayNets: lay.aliveCount,
		RefDevices: len(ref.devs), LayDevices: len(lay.devs),
	}

	anchors, seedCount, anchorMM := anchorAnalysis(ref, lay)
	res.Mismatches = append(res.Mismatches, anchorMM...)

	m := newMatcher(ref, lay, anchors, seedCount)
	m.refineAll()
	if len(anchorMM) == 0 {
		// class imbalances are only reported when the anchors are
		// consistent: a broken anchor skews every seeded class around
		// it, and the histogram echoes would bury the actual diagnosis
		res.Mismatches = append(res.Mismatches, m.classMismatches(ref, lay)...)
	}

	if len(res.Mismatches) == 0 {
		netMap, ok := m.individualize()
		if ok {
			res.NetMap = netMap
			res.Clean = true
		} else {
			res.Mismatches = append(res.Mismatches, Mismatch{
				Kind: KindAmbiguous, RefNet: -1, LayNet: -1,
				Hint: "partitions balance but no explicit net matching was found within budget",
			})
		}
	}
	sort.SliceStable(res.Mismatches, func(i, j int) bool {
		return kindRank[res.Mismatches[i].Kind] < kindRank[res.Mismatches[j].Kind]
	})
	return res
}

// anchorAnalysis clusters the labels both sides share by the nets they
// land on. A cluster touching one ref net and one lay net is a
// consistent anchor and seeds refinement; anything else is already a
// diagnosis — a declared net split across layout nets (open), several
// declared nets merged into one layout net (short), or two crossed
// pairs (swapped).
func anchorAnalysis(ref, lay *rnetlist) (anchors [2][]int32, seedCount int32, out []Mismatch) {
	// union-find over cluster members: ref nets and lay nets, indexed
	// densely in first-seen order (map iteration order does not matter:
	// clusters are sets, and every emitted order below keys on net ids)
	type node struct {
		side int8
		net  int32
	}
	idx := map[node]int{}
	var nodes []node
	parent := []int{}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	add := func(nd node) int {
		if i, ok := idx[nd]; ok {
			return i
		}
		i := len(nodes)
		idx[nd] = i
		nodes = append(nodes, nd)
		parent = append(parent, i)
		return i
	}
	shared := 0
	for name, rn := range ref.labelNet {
		ln, ok := lay.labelNet[name]
		if !ok {
			continue
		}
		shared++
		ri := add(node{0, int32(rn)})
		li := add(node{1, int32(ln)})
		pr, pl := find(ri), find(li)
		if pr != pl {
			parent[pr] = pl
		}
	}
	if shared == 0 {
		return anchors, 0, nil
	}

	// collect clusters
	type cluster struct {
		refs, lays []int32
		labels     []string
	}
	clusters := map[int]*cluster{}
	for i, nd := range nodes {
		root := find(i)
		cl := clusters[root]
		if cl == nil {
			cl = &cluster{}
			clusters[root] = cl
		}
		if nd.side == 0 {
			cl.refs = append(cl.refs, nd.net)
		} else {
			cl.lays = append(cl.lays, nd.net)
		}
	}
	// cluster labels are only reported for inconsistent clusters; skip
	// the collection pass entirely when every cluster is 1:1 (the clean
	// path, where label walking would be pure overhead)
	anyBad := false
	for _, cl := range clusters {
		if len(cl.refs) != 1 || len(cl.lays) != 1 {
			anyBad = true
			break
		}
	}
	if anyBad {
		for name, rn := range ref.labelNet {
			if _, ok := lay.labelNet[name]; ok {
				cl := clusters[find(idx[node{0, int32(rn)}])]
				cl.labels = append(cl.labels, name)
			}
		}
	}
	roots := make([]int, 0, len(clusters))
	for r := range clusters {
		sort.Slice(clusters[r].refs, func(i, j int) bool { return clusters[r].refs[i] < clusters[r].refs[j] })
		sort.Slice(clusters[r].lays, func(i, j int) bool { return clusters[r].lays[i] < clusters[r].lays[j] })
		roots = append(roots, r)
	}
	// deterministic cluster order: by smallest reference net (net ids
	// are deterministic on both sides; label sorting is deferred to the
	// mismatch paths, which are off the hot path)
	sort.Slice(roots, func(i, j int) bool {
		return clusters[roots[i]].refs[0] < clusters[roots[j]].refs[0]
	})

	anchors[0] = make([]int32, ref.nets)
	anchors[1] = make([]int32, lay.nets)
	for _, root := range roots {
		cl := clusters[root]
		if len(cl.refs) != 1 || len(cl.lays) != 1 {
			sort.Strings(cl.labels)
		}
		switch {
		case len(cl.refs) == 1 && len(cl.lays) == 1:
			seedCount++
			anchors[0][cl.refs[0]] = seedCount
			anchors[1][cl.lays[0]] = seedCount
		case len(cl.refs) == 2 && len(cl.lays) == 2:
			out = append(out, Mismatch{
				Kind: KindSwapped, RefNet: int(minI32(cl.refs)), LayNet: int(minI32(cl.lays)),
				Labels:  cl.labels,
				Devices: describeNets(ref, cl.refs),
				Hint: fmt.Sprintf("connector pairs crossed: the declared pairing of %s differs from the layout's",
					strings.Join(cl.labels, ", ")),
			})
		case len(cl.refs) == 1 && len(cl.lays) > 1:
			out = append(out, Mismatch{
				Kind: KindOpen, RefNet: int(cl.refs[0]), LayNet: int(minI32(cl.lays)),
				Labels:  cl.labels,
				Devices: describeNets(ref, cl.refs),
				Hint: fmt.Sprintf("declared net carrying %s is %d separate nets in the layout",
					strings.Join(cl.labels, ", "), len(cl.lays)),
			})
		case len(cl.refs) > 1 && len(cl.lays) == 1:
			out = append(out, Mismatch{
				Kind: KindShort, RefNet: int(minI32(cl.refs)), LayNet: int(cl.lays[0]),
				Labels:  cl.labels,
				Devices: describeNets(ref, cl.refs),
				Hint: fmt.Sprintf("%d declared nets (%s) are one net in the layout",
					len(cl.refs), strings.Join(cl.labels, ", ")),
			})
		default:
			out = append(out, Mismatch{
				Kind: KindShort, RefNet: int(minI32(cl.refs)), LayNet: int(minI32(cl.lays)),
				Labels:  cl.labels,
				Devices: describeNets(ref, cl.refs),
				Hint: fmt.Sprintf("%d declared nets tangle with %d layout nets across %s",
					len(cl.refs), len(cl.lays), strings.Join(cl.labels, ", ")),
			})
		}
	}
	return anchors, seedCount, out
}

func minI32(vs []int32) int32 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// classMismatches reports every refinement class whose member counts
// differ between the sides, with exemplars and label hints.
func (m *matcher) classMismatches(ref, lay *rnetlist) []Mismatch {
	nets, devs := m.histograms()
	var out []Mismatch

	// device classes first: a rewired transistor is the sharper report
	for _, c := range unionKeys(devs[0], devs[1]) {
		if devs[0][c] == devs[1][c] {
			continue
		}
		mm := Mismatch{Kind: KindDevice, RefNet: -1, LayNet: -1}
		sideName, r := "reference", ref
		di := exemplarDev(m.s[0], c)
		if di < 0 {
			sideName, r = "layout", lay
			di = exemplarDev(m.s[1], c)
		}
		if di >= 0 {
			d := r.devs[di]
			mm.Devices = []string{describeDev(r, d)}
			mm.Labels = nearLabels(r, d)
		}
		mm.Hint = fmt.Sprintf("device class %d has %d reference / %d layout members (%s exemplar shown)",
			c, devs[0][c], devs[1][c], sideName)
		out = append(out, mm)
	}

	netClasses := unionKeys(nets[0], nets[1])
	for _, c := range netClasses {
		if nets[0][c] == nets[1][c] {
			continue
		}
		mm := Mismatch{Kind: KindNet, RefNet: -1, LayNet: -1}
		if n := exemplarNet(m.s[0], c); n >= 0 {
			mm.RefNet = int(n)
			mm.Labels = append(mm.Labels, ref.labelsOf(n)...)
			mm.Devices = describeNets(ref, []int32{n})
		}
		if n := exemplarNet(m.s[1], c); n >= 0 {
			mm.LayNet = int(n)
			if len(mm.Labels) == 0 {
				mm.Labels = append(mm.Labels, lay.labelsOf(n)...)
			}
			if len(mm.Devices) == 0 {
				mm.Devices = describeNets(lay, []int32{n})
			}
		}
		sort.Strings(mm.Labels)
		if len(mm.Labels) > 6 {
			mm.Labels = mm.Labels[:6]
		}
		mm.Hint = fmt.Sprintf("net class %d has %d reference / %d layout members", c, nets[0][c], nets[1][c])
		out = append(out, mm)
	}
	return out
}

func unionKeys(a, b map[int32]int32) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for k := range a {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// exemplarNet returns the lowest net of a class on one side, -1 if the
// class is empty there.
func exemplarNet(sd *mside, c int32) int32 {
	for n := 0; n < sd.r.nets; n++ {
		if sd.netClass[n] == c {
			return int32(n)
		}
	}
	return -1
}

// exemplarDev returns the lowest device of a class on one side.
func exemplarDev(sd *mside, c int32) int {
	for i, dc := range sd.devClass {
		if dc == c {
			return i
		}
	}
	return -1
}

// netName renders a net for diagnostics: its smallest label, else a
// numeric placeholder (per-net label lists are unordered).
func netName(r *rnetlist, n int32) string {
	names := r.labelsOf(n)
	if len(names) == 0 {
		return fmt.Sprintf("n%d", n)
	}
	best := names[0]
	for _, s := range names[1:] {
		if s < best {
			best = s
		}
	}
	return best
}

// describeDev renders one reduced device.
func describeDev(r *rnetlist, d rdev) string {
	gs := make([]string, len(d.gates))
	for i, g := range d.gates {
		gs[i] = netName(r, g)
	}
	s := fmt.Sprintf("%s[g %s; c %s,%s]", d.kind, strings.Join(gs, ","), netName(r, d.a), netName(r, d.b))
	if d.mult > 1 {
		s += fmt.Sprintf("x%d", d.mult)
	}
	return s
}

// describeNets renders the devices attached to the given nets (up to a
// handful, deterministic order).
func describeNets(r *rnetlist, nets []int32) []string {
	want := map[int32]bool{}
	for _, n := range nets {
		want[n] = true
	}
	var out []string
	for _, d := range r.devs {
		hit := want[d.a] || want[d.b]
		for _, g := range d.gates {
			hit = hit || want[g]
		}
		if hit {
			out = append(out, describeDev(r, d))
			if len(out) == 6 {
				break
			}
		}
	}
	return out
}

// nearLabels collects labels on a device's nets.
func nearLabels(r *rnetlist, d rdev) []string {
	var out []string
	add := func(n int32) {
		out = append(out, r.labelsOf(n)...)
	}
	add(d.a)
	add(d.b)
	for _, g := range d.gates {
		add(g)
	}
	sort.Strings(out)
	if len(out) > 6 {
		out = out[:6]
	}
	return out
}
