package lvs

import (
	"fmt"
	"testing"

	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/verify"
)

// BenchmarkLVSScale runs the from-scratch comparison over NxN abutting
// SRCELL grids — the same workload the extract and DRC scale
// benchmarks use, so the trajectories compare.
func BenchmarkLVSScale(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			e := gridEditor(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := CheckEditor(e)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Clean {
					b.Fatalf("grid not clean: %v", res.Mismatches)
				}
			}
		})
	}
}

// BenchmarkIncrementalLVS measures the edit-verify loop on a 32x32
// grid: per iteration one cell moves and the whole design re-verifies
// against its declared structure, through the same entry point both
// ways.
//
//   - incremental: the generation-keyed path — spliced extraction off
//     the shared verifier, memoized leaf netlists, re-stitched
//     composition entry;
//   - full: cold caches every iteration (a fresh verifier and a fresh
//     reference memo), the from-scratch comparison cost every
//     re-verify would pay without them.
func BenchmarkIncrementalLVS(b *testing.B) {
	const n = 32
	for _, mode := range []string{"incremental", "full"} {
		b.Run(fmt.Sprintf("%dx%d/%s", n, n, mode), func(b *testing.B) {
			e := gridEditor(b, n)
			in := e.Cell.Instances[n*n/2+n/2]
			v := &verify.Verifier{}
			inc := &Incremental{}
			if _, err := inc.Check(e, v); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := rules.Lambda
				if i%2 == 1 {
					d = -rules.Lambda
				}
				e.MoveInstance(in, geom.Pt(d, 0))
				if mode == "incremental" {
					if _, err := inc.Check(e, v); err != nil {
						b.Fatal(err)
					}
					continue
				}
				cold := &Incremental{}
				if _, err := cold.Check(e, &verify.Verifier{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
