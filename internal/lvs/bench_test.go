package lvs

import (
	"fmt"
	"testing"

	"riot/internal/extract"
	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/verify"
)

// BenchmarkLVSScale runs the from-scratch comparison over NxN abutting
// SRCELL grids — the same workload the extract and DRC scale
// benchmarks use, so the trajectories compare.
func BenchmarkLVSScale(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			e := gridEditor(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := CheckEditor(e)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Clean {
					b.Fatalf("grid not clean: %v", res.Mismatches)
				}
			}
		})
	}
}

// BenchmarkIncrementalLVS measures the edit-verify loop on a 32x32
// grid: per iteration one cell moves and the whole design re-verifies
// against its declared structure, through the same entry point both
// ways.
//
//   - incremental: the generation-keyed path — spliced extraction off
//     the shared verifier, memoized leaf netlists, re-stitched
//     composition entry;
//   - full: cold caches every iteration (a fresh verifier and a fresh
//     reference memo), the from-scratch comparison cost every
//     re-verify would pay without them.
func BenchmarkIncrementalLVS(b *testing.B) {
	const n = 32
	for _, mode := range []string{"incremental", "full"} {
		b.Run(fmt.Sprintf("%dx%d/%s", n, n, mode), func(b *testing.B) {
			e := gridEditor(b, n)
			in := e.Cell.Instances[n*n/2+n/2]
			v := &verify.Verifier{}
			inc := &Incremental{}
			if _, err := inc.Check(e, v); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := rules.Lambda
				if i%2 == 1 {
					d = -rules.Lambda
				}
				e.MoveInstance(in, geom.Pt(d, 0))
				if mode == "incremental" {
					if _, err := inc.Check(e, v); err != nil {
						b.Fatal(err)
					}
					continue
				}
				cold := &Incremental{}
				if _, err := cold.Check(e, &verify.Verifier{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLVSHierMatch isolates the matching stage (reference,
// circuit and flattened geometry prebuilt and shared): the flat
// comparison against the certificate-backed path, cold — every
// certified iteration re-runs the one-time sub-cell matches from an
// empty store and re-certifies all occurrences. The repeated leaf is
// matched once; the copies settle by device alignment and the forced
// boundary bijection, so the certified cost is the flat cost of the
// un-certified residual (here: nothing) plus linear bookkeeping.
func BenchmarkLVSHierMatch(b *testing.B) {
	for _, n := range []int{32, 64} {
		e := gridEditor(b, n)
		fr, err := flatten.Cell(e.Cell, flatten.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ckt, _, err := extract.SolveNets(fr)
		if err != nil {
			b.Fatal(err)
		}
		var rf Reference
		ref, occs, err := rf.NetlistOccs(e.Cell, nil)
		if err != nil {
			b.Fatal(err)
		}
		lay := FromCircuit(ckt)
		b.Run(fmt.Sprintf("%dx%d/flat", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res := Compare(ref, lay); !res.Clean {
					b.Fatalf("flat not clean: %v", res.Mismatches)
				}
			}
		})
		b.Run(fmt.Sprintf("%dx%d/certified", n, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var cs CertStore
				res := compareHier(&rf, &cs, occs, ref, ckt, fr)
				if !res.Clean {
					b.Fatalf("certified not clean: %v", res.Mismatches)
				}
				if res.Cert.Certified != n*n {
					b.Fatalf("certified %d of %d occurrences", res.Cert.Certified, n*n)
				}
			}
		})
	}
}
