package lvs

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"riot/internal/castore"
	"riot/internal/geom"
	"riot/internal/verify"
)

// The persistence differential suite: the on-disk store must change
// verdicts never and wall-time only. Every test compares a
// store-backed run against the cache-free flat baseline, both on a
// warm store and under every corruption mode, and asserts the results
// are deeply equal.

// warmSession runs one full LVS over a fresh 4x4 grid editor with the
// store at dir attached, simulating one process lifetime (fresh cell
// pointers, fresh signer, fresh memos each call — only the directory
// persists).
func warmSession(t *testing.T, dir string, logf func(string, ...any)) (*Result, CertStoreStats, int, *castore.Store) {
	t.Helper()
	e := gridEditor(t, 4)
	st, err := castore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Log = logf
	v := &verify.Verifier{}
	inc := &Incremental{}
	inc.AttachDisk(st, &castore.Signer{}, v)
	res, err := inc.Check(e, v)
	if err != nil {
		t.Fatalf("store-backed check: %v", err)
	}
	return res, inc.Certs.Stats(), v.FlattenDiskStats(), st
}

// TestPersistWarmRestart: a second process over the same store
// directory must produce the identical verdict while performing zero
// sub-cell matches and zero leaf re-extractions — the whole point of
// persisting the caches.
func TestPersistWarmRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")

	cold, coldStats, _, st1 := warmSession(t, dir, t.Logf)
	mustClean(t, cold, nil, "cold store-backed run")
	if coldStats.Matched != 1 || coldStats.DiskHits != 0 {
		t.Fatalf("cold run stats = %+v; want 1 match, 0 disk hits", coldStats)
	}
	if got := st1.Stats(); got.Puts == 0 {
		t.Fatalf("cold run wrote nothing to the store: %+v", got)
	}
	st1.Close()

	warm, warmStats, shardsLoaded, st2 := warmSession(t, dir, t.Logf)
	defer st2.Close()
	if warmStats.Matched != 0 {
		t.Errorf("warm restart performed %d sub-cell matches; want 0 (served from disk)", warmStats.Matched)
	}
	if warmStats.DiskHits != 1 {
		t.Errorf("warm restart disk hits = %d, want 1 (the one distinct leaf)", warmStats.DiskHits)
	}
	if shardsLoaded != 16 {
		t.Errorf("warm restart loaded %d flatten shards from disk, want 16", shardsLoaded)
	}
	if sst := st2.Stats(); sst.Corrupt != 0 {
		t.Errorf("clean warm restart rejected %d entries", sst.Corrupt)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm-restart verdict diverged:\ncold: %+v\nwarm: %+v", cold, warm)
	}

	// and both agree with the certificate-free flat baseline
	flat, err := CheckEditorFlat(gridEditor(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	got := verdict{warm.Clean, warm.Mismatches}
	want := verdict{flat.Clean, flat.Mismatches}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("store-backed verdict diverged from flat baseline:\nstore: %+v\nflat:  %+v", got, want)
	}
}

// TestPersistTamperMatrix: every corruption mode over every entry of a
// populated store must degrade to a cold recompute with the identical
// verdict, the damage logged, and the bad entries quarantined.
func TestPersistTamperMatrix(t *testing.T) {
	baseline, _, _, st0 := warmSession(t, filepath.Join(t.TempDir(), "ref"), t.Logf)
	st0.Close()

	for _, mode := range []castore.Tamper{
		castore.TamperBitFlip, castore.TamperTruncate, castore.TamperVersionBump,
		castore.TamperZero, castore.TamperGarbage,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "cache")
			_, _, _, st1 := warmSession(t, dir, t.Logf)
			st1.Close()
			n, err := castore.TamperEntries(dir, mode)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("tamper damaged no entries; the store wrote nothing?")
			}

			var logged strings.Builder
			logf := func(format string, args ...any) {
				logged.WriteString(strings.TrimSpace(strings.ReplaceAll(format, "%s", "_")) + "\n")
				t.Logf(format, args...)
			}
			res, stats, _, st2 := warmSession(t, dir, logf)
			defer st2.Close()
			if !reflect.DeepEqual(baseline, res) {
				t.Errorf("verdict diverged under %s corruption:\nwant %+v\ngot  %+v", mode, baseline, res)
			}
			if stats.DiskHits != 0 {
				t.Errorf("%d disk hits served from a fully corrupted store", stats.DiskHits)
			}
			if stats.Matched != 1 {
				t.Errorf("matches = %d after corruption, want 1 (cold recompute)", stats.Matched)
			}
			sst := st2.Stats()
			if sst.Corrupt == 0 {
				t.Error("corrupted entries were not detected")
			}
			if logged.Len() == 0 {
				t.Error("corruption recovery logged nothing")
			}
			// recovery re-populates: a third session is warm again
			_, stats3, _, st3 := warmSession(t, dir, t.Logf)
			defer st3.Close()
			if stats3.Matched != 0 || stats3.DiskHits != 1 {
				t.Errorf("store did not recover after corruption: %+v", stats3)
			}
		})
	}
}

// TestPersistConcurrentSessions: two store handles on one directory
// (the concurrent-riot-invocation shape) must both verify correctly.
// Run with -race.
func TestPersistConcurrentSessions(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	done := make(chan *Result, 2)
	for k := 0; k < 2; k++ {
		go func() {
			e := gridEditor(t, 4)
			st, err := castore.Open(dir)
			if err != nil {
				t.Error(err)
				done <- nil
				return
			}
			defer st.Close()
			v := &verify.Verifier{}
			inc := &Incremental{}
			inc.AttachDisk(st, &castore.Signer{}, v)
			res, err := inc.Check(e, v)
			if err != nil {
				t.Error(err)
				done <- nil
				return
			}
			done <- res
		}()
	}
	a, b := <-done, <-done
	if a == nil || b == nil {
		t.Fatal("a concurrent session failed")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("concurrent sessions disagree:\n%+v\n%+v", a, b)
	}
	mustClean(t, a, nil, "concurrent session")
}

// TestPersistShallowReachRecomputes: an entry stored at a shallow
// reach must not serve a session that needs deeper boundary retention.
// nandQuad's overlapping pairs force reach growth beyond the base
// contract; priming the store with the plain grid first ensures the
// SRCELL entry on disk carries only base reach.
func TestPersistShallowReachRecomputes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	_, _, _, st1 := warmSession(t, dir, t.Logf)
	st1.Close()

	// a second design reusing the same leaf content at a deep overlap:
	// correctness requires either a deep-enough disk entry or a
	// recompute — the verdict must match the cache-free baseline
	e := gridEditor(t, 2)
	e.MoveInstance(e.Cell.Instances[1], geom.Pt(-6*lam, 0))
	flat, err := CheckEditorFlat(e)
	if err != nil {
		t.Fatal(err)
	}

	e2 := gridEditor(t, 2)
	e2.MoveInstance(e2.Cell.Instances[1], geom.Pt(-6*lam, 0))
	st, err := castore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	v := &verify.Verifier{}
	inc := &Incremental{}
	inc.AttachDisk(st, &castore.Signer{}, v)
	res, err := inc.Check(e2, v)
	if err != nil {
		t.Fatal(err)
	}
	got := verdict{res.Clean, res.Mismatches}
	want := verdict{flat.Clean, flat.Mismatches}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("store-backed overlap verdict diverged:\nstore: %+v\nflat:  %+v", got, want)
	}
}
