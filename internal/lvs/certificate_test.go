package lvs

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"riot/internal/core"
	"riot/internal/filter"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/sticks"
	"riot/internal/verify"
)

// TestCertificateGridCoverage pins that the certificate path actually
// engages on the canonical workload: every occurrence of the repeated
// leaf certifies, the leaf is matched exactly once, and the verdict is
// clean with a complete net map.
func TestCertificateGridCoverage(t *testing.T) {
	e := gridEditor(t, 4)
	v := &verify.Verifier{}
	inc := &Incremental{}
	res, err := inc.Check(e, v)
	mustClean(t, res, err, "4x4 grid")
	if res.Cert.Occurrences != 16 || res.Cert.Certified != 16 || res.Cert.Cells != 1 {
		t.Fatalf("cert stats = %+v; want all 16 occurrences certified under 1 cell", res.Cert)
	}
	if res.Cert.Fallback {
		t.Error("clean grid fell back to the flat comparison; the certified path must settle it")
	}
	st := inc.Certs.Stats()
	if st.Matched != 1 {
		t.Errorf("sub-cell matches = %d, want the one distinct leaf matched once", st.Matched)
	}
	if st.Hits != 15 {
		t.Errorf("store hits = %d, want 15 (every further occurrence served by the certificate)", st.Hits)
	}
	// the one-time match's verified net map is the recorded evidence:
	// every certificate in the store carries its witness
	for sig, ct := range inc.Certs.certs {
		if ct.ok && len(ct.witness) == 0 {
			t.Errorf("certificate %x verified clean but recorded no witness net map", sig)
		}
	}
}

// TestCertificateInvalidation: editing inside one occurrence of a
// repeated cell must de-certify only that occurrence's cell signature.
// The edit swaps the instance's defining cell for a stretched variant
// (the editor contract: mutations inside a leaf swap the pointer);
// only the variant is matched anew — the other occurrences keep
// comparing under the original certificate.
func TestCertificateInvalidation(t *testing.T) {
	e := gridEditor(t, 4)
	v := &verify.Verifier{}
	inc := &Incremental{}
	res, err := inc.Check(e, v)
	mustClean(t, res, err, "before edit")
	matched0 := inc.Certs.Stats().Matched
	if matched0 != 1 {
		t.Fatalf("initial matches = %d, want 1", matched0)
	}

	// a pure re-stitch (move) re-matches nothing: every signature is
	// already certified
	e.MoveInstance(e.Cell.Instances[5], geom.Pt(400*lam, 400*lam))
	res, err = inc.Check(e, v)
	mustClean(t, res, err, "after move")
	if got := inc.Certs.Stats().Matched; got != matched0 {
		t.Fatalf("a move re-matched sub-cells: %d -> %d", matched0, got)
	}

	// edit INSIDE one occurrence: clone the leaf's sticks definition
	// with an extra (electrically redundant) wire and swap the pointer
	old := e.Cell.Instances[10].Cell
	variant := *old.Sticks
	variant.Name = "SRCELL_EDIT"
	variant.Wires = append(append([]sticks.Wire{}, variant.Wires...),
		sticks.Wire{Layer: variant.Wires[0].Layer, Width: variant.Wires[0].Width,
			Points: append([]geom.Point{}, variant.Wires[0].Points...)})
	edited, err := core.NewLeafFromSticks(&variant)
	if err != nil {
		t.Fatal(err)
	}
	e.Cell.Instances[10].Cell = edited
	e.Invalidate()

	res, err = inc.Check(e, v)
	mustClean(t, res, err, "after in-cell edit")
	if got := inc.Certs.Stats().Matched; got != matched0+1 {
		t.Fatalf("in-cell edit re-matched %d sub-cells, want exactly the edited variant (1)", got-matched0)
	}
	if res.Cert.Cells != 2 || res.Cert.Certified != 16 {
		t.Fatalf("cert stats after edit = %+v; want 16 certified under 2 distinct cells", res.Cert)
	}
}

// verdict projects the fields the certified and certificate-free paths
// must agree on exactly. (NetMap and the net/device counts legitimately
// differ: the certified result reports collapsed accounting.)
type verdict struct {
	Clean      bool
	Mismatches []Mismatch
}

// TestCertifiedMatchesFlatUnderEdits is the differential acceptance:
// randomized editor operations, the certificate-backed path after each
// edit compared against the plain flat comparison. Clean flags and
// every structured mismatch must be DeepEqual — the certificates are
// invisible except as speed.
func TestCertifiedMatchesFlatUnderEdits(t *testing.T) {
	e := gridEditor(t, 4)
	island, err := e.CreateInstance("SRCELL", "island",
		geom.MakeTransform(geom.R0, geom.Pt(500*lam, 500*lam)), 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	check := func(step int) {
		t.Helper()
		cert, err := CheckEditor(e)
		if err != nil {
			t.Fatalf("step %d: certified: %v", step, err)
		}
		flat, err := CheckEditorFlat(e)
		if err != nil {
			t.Fatalf("step %d: flat: %v", step, err)
		}
		got := verdict{cert.Clean, cert.Mismatches}
		want := verdict{flat.Clean, flat.Mismatches}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: certified verdict diverged:\ncertified: %+v\nflat:      %+v", step, got, want)
		}
		if cert.Clean && (len(cert.NetMap) != cert.RefNets || cert.RefNets != cert.LayNets) {
			t.Fatalf("step %d: certified clean result inconsistent: %d mapped of %d/%d nets",
				step, len(cert.NetMap), cert.RefNets, cert.LayNets)
		}
	}

	check(0)
	for step := 1; step <= 20; step++ {
		ins := e.Cell.Instances
		in := ins[rng.Intn(len(ins))]
		switch rng.Intn(5) {
		case 0:
			e.MoveInstance(in, geom.Pt(lam, 0))
		case 1:
			e.MoveInstance(in, geom.Pt(0, -lam))
		case 2:
			e.MoveInstance(in, geom.Pt(20*lam, 0))
		case 3: // overlap a neighbor: deep-abutment and short territory
			e.MoveInstance(in, geom.Pt(-6*lam, 0))
		case 4:
			other := ins[rng.Intn(len(ins))]
			if other != island {
				_ = e.Declare(island, "OUT", other, "IN")
			}
		}
		check(step)
	}
}

// TestCertifiedChipClean runs the certificate path over the full
// figure-10 chip and the shipped library: nested compositions, routed
// channels, stretched cells and CIF pads — partial certification
// (pads and one-off route cells stay in the residual) with a clean
// verdict throughout.
func TestCertifiedChipClean(t *testing.T) {
	for _, n := range []int{8} {
		e := gridEditor(t, n)
		res, err := CheckEditor(e)
		mustClean(t, res, err, fmt.Sprintf("%dx%d grid", n, n))
		if res.Cert.Certified != n*n {
			t.Errorf("%dx%d: certified %d of %d occurrences", n, n, res.Cert.Certified, n*n)
		}
	}
	_, chip, _, err := filter.BuildChip(filter.Routed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckCell(chip)
	mustClean(t, res, err, "chip/routed")
	if res.Cert.Certified == 0 {
		t.Error("chip verified with no certified occurrences; the repeated gates should certify")
	}
	cells, err := lib.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		res, err := CheckCell(c)
		mustClean(t, res, err, c.Name)
	}
}
