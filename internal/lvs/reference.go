package lvs

import (
	"fmt"
	"sync/atomic"

	"riot/internal/castore"
	"riot/internal/core"
	"riot/internal/extract"
	"riot/internal/flatten"
	"riot/internal/geom"
	"riot/internal/seam"
)

// This file derives the reference netlist — what the composition
// declares — without ever extracting the assembled design. Each cell
// gets one memoized entry:
//
//   - a leaf entry extracts the leaf alone (flatten + solve of just
//     that cell) and keeps its devices, its connector-to-net ports and
//     its boundary material: every solved fragment within the entry's
//     seam reach of the cell's bounding box (the base contract reach,
//     deepened per seam when placed boxes overlap), tagged with the
//     net it carries;
//   - a composition entry allocates a net block per instance copy and
//     unions blocks where the declared structure connects them:
//     connector points that coincide, and boundary material that
//     touches across a sanctioned seam (leaf occurrence boxes that
//     touch — the abutment contract internal/drc also trusts).
//
// Entries are validated by a structural signature (instance
// placements, recursively), so an edit rebuilds exactly the entries
// whose cells changed: moving one instance re-stitches its composition
// but re-extracts no leaf.

// seamReach is the base abutment-contract reach, shared with the
// hierarchical extract/DRC certificate engine through internal/seam
// (see seam.Reach for the full contract). Each entry retains boundary
// material to the deepest reach any seam it participates in actually
// needs (seamDepth, computed from the overlap of the two placed
// boxes), so a deep overlap stitches exactly like a shallow one
// instead of mis-reporting its sanctioned contacts as shorts.
const seamReach = seam.Reach

// portKey identifies a connector position: connectors coincide when
// they share a point and a layer.
type portKey struct {
	x, y  int
	layer geom.Layer
}

// port is one cell connector resolved against the cell's own netlist.
type port struct {
	name  string
	at    geom.Point
	layer geom.Layer
	side  geom.Side
	net   int32 // -1 when the connector resolved to no material
}

// bfrag is one piece of boundary material: its rectangle and the
// placed bounding box of the leaf occurrence that drew it (both in
// cell-local coordinates), and the net it carries.
type bfrag struct {
	layer   geom.Layer
	r       geom.Rect
	leafBox geom.Rect
	net     int32
}

// refEntry is one cell's memoized reference derivation.
type refEntry struct {
	sig      uint64
	reach    int // boundary retention depth the entry was built with
	nets     int
	devices  []Device
	ports    []port
	portAt   map[portKey]int32 // coincidence-resolved net per connector position
	labels   map[string]int    // the cell's full label namespace, resolved
	boundary []bfrag
	occs     []refOcc // leaf occurrences in flatten walk order
	err      error
}

// refOcc is one leaf occurrence inside an entry's net space: which
// cell it instantiates and where each of the cell's standalone
// (cell-local) nets landed in the entry's dense numbering. Interior
// nets stay distinct per occurrence — nothing outside a cell unions
// into material the seam contract cannot reach — which is what the
// hierarchical certificates rely on to collapse certified occurrences.
type refOcc struct {
	cell *core.Cell
	sig  uint64
	nets []int32
}

// Reference derives and memoizes reference netlists. The zero value is
// ready to use; one Reference serves any number of cells (entries are
// keyed per cell and validated against a placement signature, so
// edited compositions re-stitch while untouched cells and all leaf
// extractions are reused).
//
// A Reference belongs to one session: its memos are keyed by *Cell /
// *Instance pointer, so NetlistOccs asserts single-threaded entry
// rather than corrupt them — sessions share derivation work through
// the content-addressed store (AttachDisk), never through a Reference.
// Snapshot clones of one design cell are handled naturally (unchanged
// subtrees keep their pointers, superseded clones are pruned once the
// memo bloats), which is what keeps a long-lived server session's
// memory bounded.
type Reference struct {
	ids   map[*core.Cell]uint64
	memo  map[*core.Cell]*refEntry
	conns map[*core.Instance]cachedConns
	parts map[*core.Instance]cachedParts

	// busy asserts single-session use of the pointer-keyed memos; a
	// plain int32 with atomic access keeps the struct copyable.
	busy int32

	// optional persistent second level (AttachDisk): leaf entries
	// missing in memory are looked up by content signature before the
	// leaf is extracted
	disk   castore.Blob
	signer *castore.Signer
}

// instKey is the placement snapshot instance-level caches are valid
// for (mirrors the flatten cache's contract: mutations inside the
// defining cell swap the pointer or go through Editor.Invalidate).
type instKey struct {
	cell           *core.Cell
	sig            uint64
	tr             geom.Transform
	nx, ny, sx, sy int
}

func (rf *Reference) keyOf(in *core.Instance) instKey {
	return instKey{cell: in.Cell, sig: rf.sigOf(in.Cell), tr: in.Tr,
		nx: in.Nx, ny: in.Ny, sx: in.Sx, sy: in.Sy}
}

// cachedConns memoizes an instance's resolved connector list for the
// label pass; it only changes when the placement does.
type cachedConns struct {
	key  instKey
	list []core.InstConn
}

// instConns is the memoized connector provider shared by the label
// pass and the composition-connector assembly.
func (rf *Reference) instConns(in *core.Instance) []core.InstConn {
	key := rf.keyOf(in)
	if ent, ok := rf.conns[in]; ok && ent.key == key {
		return ent.list
	}
	list := in.Connectors()
	if rf.conns == nil {
		rf.conns = map[*core.Instance]cachedConns{}
	}
	rf.conns[in] = cachedConns{key: key, list: list}
	return list
}

// cachedParts memoizes an instance's transformed stitch parts — every
// copy's bounding box, connector positions and boundary material, with
// copy-relative net ids. A one-instance edit re-transforms one entry;
// the other thousand reuse theirs. reach records the sub-entry
// boundary retention the parts were derived from: when a neighbor's
// overlap deepens the instance's required reach, the parts re-derive.
type cachedParts struct {
	key    instKey
	reach  int
	copies []copyParts
}

// copyParts is one array copy's stitch contribution in parent
// coordinates; nets are relative to the copy's block base.
type copyParts struct {
	bbox     geom.Rect
	ports    []portReg
	boundary []bfrag
}

// portReg is one valid connector position for coincidence stitching.
type portReg struct {
	key portKey
	net int32 // copy-relative
}

// instParts returns the instance's transformed stitch parts, cached by
// placement and the sub-entry's boundary reach.
func (rf *Reference) instParts(in *core.Instance, sub *refEntry) []copyParts {
	key := rf.keyOf(in)
	if ent, ok := rf.parts[in]; ok && ent.key == key && ent.reach == sub.reach {
		return ent.copies
	}
	var copies []copyParts
	for i := 0; i < in.Nx; i++ {
		for j := 0; j < in.Ny; j++ {
			tr := in.CopyTransform(i, j)
			cp := copyParts{bbox: tr.ApplyRect(in.Cell.BBox())}
			for _, p := range sub.ports {
				if p.net < 0 {
					continue
				}
				at := tr.Apply(p.at)
				cp.ports = append(cp.ports, portReg{key: portKey{at.X, at.Y, p.layer}, net: p.net})
			}
			cp.boundary = make([]bfrag, len(sub.boundary))
			for k, bf := range sub.boundary {
				cp.boundary[k] = bfrag{
					layer:   bf.layer,
					r:       tr.ApplyRect(bf.r),
					leafBox: tr.ApplyRect(bf.leafBox),
					net:     bf.net,
				}
			}
			copies = append(copies, cp)
		}
	}
	if rf.parts == nil {
		rf.parts = map[*core.Instance]cachedParts{}
	}
	rf.parts[in] = cachedParts{key: key, reach: sub.reach, copies: copies}
	return copies
}

// Netlist derives the reference netlist of a cell. declared lists
// connection records to honor on top of the cell's structure — the
// editing session's retained Connection list; nil is valid and means
// "structure only" (cells loaded from files carry no records).
func (rf *Reference) Netlist(c *core.Cell, declared []core.Connection) (*Netlist, error) {
	nl, _, err := rf.NetlistOccs(c, declared)
	return nl, err
}

// NetlistOccs is Netlist plus the leaf-occurrence map: for every leaf
// occurrence of the flattened design (in flatten walk order), the cell
// it instantiates and where each of that cell's standalone nets landed
// in the returned netlist's numbering. The hierarchical-certificate
// comparison uses the map to collapse repeated, already-matched cells.
func (rf *Reference) NetlistOccs(c *core.Cell, declared []core.Connection) (*Netlist, []refOcc, error) {
	if !atomic.CompareAndSwapInt32(&rf.busy, 0, 1) {
		return nil, nil, fmt.Errorf("lvs: Reference entered concurrently (a Reference serves one session; share work across sessions through the content-addressed store)")
	}
	defer atomic.StoreInt32(&rf.busy, 0)
	rf.pruneStale(c)
	e := rf.entry(c, seamReach)
	if e.err != nil {
		return nil, nil, e.err
	}
	if len(declared) == 0 {
		// nothing to union on top: the entry IS the netlist. Devices,
		// labels and occurrence maps are shared read-only with the memo.
		return &Netlist{NetCount: e.nets, Devices: e.devices, Labels: e.labels}, e.occs, nil
	}

	// apply the declared records on top of the entry's net space, then
	// compress to the dense netlist
	uf := geom.NewUnionFind(e.nets)
	for _, conn := range declared {
		rf.declareUnion(uf, e, conn)
	}
	remap := make([]int32, e.nets)
	for i := range remap {
		remap[i] = -1
	}
	nets := 0
	renum := func(n int32) int {
		root := uf.Find(int(n))
		if remap[root] < 0 {
			remap[root] = int32(nets)
			nets++
		}
		return int(remap[root])
	}

	out := &Netlist{Labels: make(map[string]int, len(e.labels))}
	out.Devices = make([]Device, len(e.devices))
	for i, d := range e.devices {
		out.Devices[i] = Device{Kind: d.Kind, Gate: renum(int32(d.Gate)), A: renum(int32(d.A)), B: renum(int32(d.B))}
	}
	for name, n := range e.labels {
		out.Labels[name] = renum(int32(n))
	}
	// nets carrying neither devices nor labels still count: walk the
	// whole space so NetCount matches the layout side's convention
	for n := 0; n < e.nets; n++ {
		renum(int32(n))
	}
	out.NetCount = nets
	// occurrence maps re-expressed in the declared-union numbering
	occs := make([]refOcc, len(e.occs))
	for i, oc := range e.occs {
		m := make([]int32, len(oc.nets))
		for k, n := range oc.nets {
			m[k] = int32(renum(n))
		}
		occs[i] = refOcc{cell: oc.cell, sig: oc.sig, nets: m}
	}
	return out, occs, nil
}

// resolveLabels fills an entry's label map — the same namespace
// flatten labels the layout with. For compositions, the instance
// connectors (every exported "inst.CONN" name is also an instance
// label at the same point) plus the explicit extras cover it; later
// names overwrite earlier ones, as flatten's do.
func (rf *Reference) resolveLabels(c *core.Cell, e *refEntry) {
	e.labels = make(map[string]int, len(e.portAt))
	label := func(name string, at geom.Point, layer geom.Layer) {
		if n, ok := e.portAt[portKey{at.X, at.Y, layer}]; ok && n >= 0 {
			e.labels[name] = int(n)
		}
	}
	for _, in := range c.Instances {
		for _, ic := range rf.instConns(in) {
			label(in.Name+"."+ic.Name, ic.At, ic.Layer)
		}
	}
	for _, cn := range c.ExtraConnectors {
		label(cn.Name, cn.At, cn.Layer)
	}
}

// declareUnion applies one declared connection record: both connector
// positions resolve through the port map and their nets union. Records
// whose endpoints no longer resolve (a renamed connector, material
// removed from under a point) are skipped — there is no net to tie.
func (rf *Reference) declareUnion(uf *geom.UnionFind, e *refEntry, conn core.Connection) {
	fc, err := conn.From.Connector(conn.FromConn)
	if err != nil {
		return
	}
	tc, err := conn.To.Connector(conn.ToConn)
	if err != nil {
		return
	}
	fn, okF := e.portAt[portKey{fc.At.X, fc.At.Y, fc.Layer}]
	tn, okT := e.portAt[portKey{tc.At.X, tc.At.Y, tc.Layer}]
	if okF && okT && fn >= 0 && tn >= 0 {
		uf.Union(int(fn), int(tn))
	}
}

// cellID returns a stable (per-Reference) numeric id for a cell.
func (rf *Reference) cellID(c *core.Cell) uint64 {
	if rf.ids == nil {
		rf.ids = map[*core.Cell]uint64{}
	}
	id, ok := rf.ids[c]
	if !ok {
		id = uint64(len(rf.ids) + 1)
		rf.ids[c] = id
	}
	return id
}

// sigOf computes a cell's structural signature: for leaves the cell
// identity (leaf payloads are immutable under the editor contract —
// STRETCH swaps the cell pointer), for compositions a hash of every
// instance's defining-cell signature and placement. An entry whose
// signature still matches is current.
func (rf *Reference) sigOf(c *core.Cell) uint64 {
	h := fnvInit()
	h = fnvMix(h, rf.cellID(c))
	if c.Kind != core.Composition {
		return h
	}
	for _, in := range c.Instances {
		h = fnvMix(h, rf.sigOf(in.Cell))
		h = fnvMix(h, uint64(uint32(in.Tr.O)))
		h = fnvMix(h, pack32(in.Tr.D.X, in.Tr.D.Y))
		h = fnvMix(h, pack32(in.Nx, in.Ny))
		h = fnvMix(h, pack32(in.Sx, in.Sy))
	}
	return h
}

func pack32(a, b int) uint64 { return seam.Pack32(a, b) }

// entry returns the cell's current derivation, rebuilding it when the
// structural signature says the memoized one is stale or when a seam
// needs boundary material deeper than the memoized entry retained.
// Entries only ever grow their reach (the deepest any parent asked
// for), so alternating parents cannot thrash the memo.
func (rf *Reference) entry(c *core.Cell, minReach int) *refEntry {
	sig := rf.sigOf(c)
	if e, ok := rf.memo[c]; ok {
		if e.sig == sig && e.reach >= minReach {
			return e
		}
		if e.reach > minReach {
			minReach = e.reach // never shrink: alternating parents must not thrash
		}
	}
	var e *refEntry
	if c.Kind == core.Composition {
		e = rf.stitch(c, minReach)
	} else {
		e = rf.leafEntry(c, minReach)
	}
	e.sig = sig
	// a disk-loaded leaf entry may retain boundary material deeper than
	// asked; record the depth it actually has (never less than asked)
	if e.reach < minReach {
		e.reach = minReach
	}
	if rf.memo == nil {
		rf.memo = map[*core.Cell]*refEntry{}
	}
	rf.memo[c] = e
	return e
}

// seamDepth bounds how deep sanctioned seam contact against bv can
// reach into bu; see seam.Depth for the full contract.
func seamDepth(bu, bv geom.Rect) int { return seam.Depth(bu, bv) }

// leafEntry extracts a leaf cell alone and packages its netlist,
// ports and boundary material within reach of its bounding box. With a
// persistent store attached, the extraction is skipped when the store
// holds an entry for the same cell content at sufficient reach, and
// fresh derivations are written back.
func (rf *Reference) leafEntry(c *core.Cell, reach int) *refEntry {
	if e := rf.diskLoadLeaf(c, reach); e != nil {
		return e
	}
	fr, err := flatten.Cell(c, flatten.Options{})
	if err != nil {
		return &refEntry{err: fmt.Errorf("lvs: leaf %s: %w", c.Name, err)}
	}
	ckt, frags, err := extract.SolveNets(fr)
	if err != nil {
		return &refEntry{err: fmt.Errorf("lvs: leaf %s: %w", c.Name, err)}
	}
	e := &refEntry{nets: ckt.NetCount, portAt: map[portKey]int32{}}
	e.devices = make([]Device, len(ckt.Transistors))
	for i, t := range ckt.Transistors {
		e.devices[i] = Device{Kind: t.Kind, Gate: t.Gate, A: t.A, B: t.B}
	}
	for _, cn := range c.Connectors() {
		net := int32(-1)
		if n, ok := ckt.NetOf[cn.Name]; ok {
			net = int32(n)
		}
		e.ports = append(e.ports, port{name: cn.Name, at: cn.At, layer: cn.Layer, side: cn.Side, net: net})
		key := portKey{cn.At.X, cn.At.Y, cn.Layer}
		if _, dup := e.portAt[key]; !dup || net >= 0 {
			e.portAt[key] = net
		}
	}
	inner := c.BBox().Inset(reach)
	for _, f := range frags {
		if inner.ContainsRect(f.R) {
			continue
		}
		e.boundary = append(e.boundary, bfrag{layer: f.Layer, r: f.R, leafBox: c.BBox(), net: f.Net})
	}
	e.labels = ckt.NetOf
	// the leaf is its own single occurrence; its standalone nets map
	// identically
	ident := make([]int32, e.nets)
	for n := range ident {
		ident[n] = int32(n)
	}
	e.occs = []refOcc{{cell: c, sig: rf.sigOf(c), nets: ident}}
	e.reach = reach
	rf.diskStoreLeaf(c, e)
	return e
}

// copyRef is one instance copy during a stitch: its bounding box, its
// boundary material (parent coordinates, copy-relative nets) and the
// copy's net block base.
type copyRef struct {
	bbox     geom.Rect
	boundary []bfrag
	base     int32
}

// stitch derives a composition's entry from its instances' entries:
// per-copy net blocks unioned at coincident connector points and
// across sanctioned abutment seams. reach is the boundary retention
// depth requested of this entry; each child entry is additionally
// asked for the deepest reach its own seams need (seamDepth over the
// touching copy-box pairs), so ABUT OVERLAPs deeper than the base
// contract stitch correctly.
func (rf *Reference) stitch(c *core.Cell, reach int) *refEntry {
	e := &refEntry{portAt: map[portKey]int32{}}

	// pass 0: every copy's placed box, from placement alone, to size
	// each instance's required seam reach before its entry is built
	type cbox struct {
		box  geom.Rect
		inst int
	}
	var cboxes []cbox
	for ii, in := range c.Instances {
		for i := 0; i < in.Nx; i++ {
			for j := 0; j < in.Ny; j++ {
				cboxes = append(cboxes, cbox{in.CopyTransform(i, j).ApplyRect(in.Cell.BBox()), ii})
			}
		}
	}
	need := make([]int, len(c.Instances))
	for ii := range need {
		need[ii] = max(seamReach, reach)
	}
	if len(cboxes) > 1 {
		boxes := make([]geom.Rect, len(cboxes))
		for i, cb := range cboxes {
			boxes[i] = cb.box
		}
		ix := geom.NewIndexFrom(boxes)
		ix.Build()
		for u := range cboxes {
			ix.QueryRect(cboxes[u].box, func(v int) bool {
				if v <= u {
					return true
				}
				bu, bv := cboxes[u].box, cboxes[v].box
				if du := seamDepth(bu, bv); du > need[cboxes[u].inst] {
					need[cboxes[u].inst] = du
				}
				if dv := seamDepth(bv, bu); dv > need[cboxes[v].inst] {
					need[cboxes[v].inst] = dv
				}
				return true
			})
		}
	}

	regs := map[portKey]int32{}
	var copies []copyRef
	var unions [][2]int32
	var occs []refOcc // entry occurrences, nets still in block space

	total := 0
	for ii, in := range c.Instances {
		sub := rf.entry(in.Cell, need[ii])
		if sub.err != nil {
			e.err = sub.err
			return e
		}
		for _, cp := range rf.instParts(in, sub) {
			base := int32(total)
			total += sub.nets
			for _, d := range sub.devices {
				e.devices = append(e.devices, Device{
					Kind: d.Kind,
					Gate: int(base) + d.Gate,
					A:    int(base) + d.A,
					B:    int(base) + d.B,
				})
			}
			// register connector positions for coincidence unions
			for _, p := range cp.ports {
				net := base + p.net
				if first, ok := regs[p.key]; ok {
					unions = append(unions, [2]int32{first, net})
				} else {
					regs[p.key] = net
				}
			}
			// the copy's leaf occurrences, offset into this block —
			// flatten walk order: instances in declaration order, copies
			// x-major, sub-occurrences recursively
			for _, oc := range sub.occs {
				m := make([]int32, len(oc.nets))
				for k, n := range oc.nets {
					m[k] = base + n
				}
				occs = append(occs, refOcc{cell: oc.cell, sig: oc.sig, nets: m})
			}
			copies = append(copies, copyRef{bbox: cp.bbox, boundary: cp.boundary, base: base})
		}
	}

	uf := geom.NewUnionFind(total)
	for _, u := range unions {
		uf.Union(int(u[0]), int(u[1]))
	}
	seamUnions(copies, uf)

	// compress the block space to dense nets
	remap := make([]int32, total)
	for i := range remap {
		remap[i] = -1
	}
	nets := 0
	renum := func(n int32) int32 {
		root := uf.Find(int(n))
		if remap[root] < 0 {
			remap[root] = int32(nets)
			nets++
		}
		return remap[root]
	}
	for i, d := range e.devices {
		e.devices[i] = Device{Kind: d.Kind, Gate: int(renum(int32(d.Gate))), A: int(renum(int32(d.A))), B: int(renum(int32(d.B)))}
	}
	// the coincidence map re-expressed in dense nets; positions with no
	// valid net stay absent (nothing to tie there)
	for key, first := range regs {
		e.portAt[key] = renum(first)
	}
	for n := 0; n < total; n++ {
		renum(int32(n))
	}
	e.nets = nets

	// occurrence maps in the dense numbering
	for oi := range occs {
		m := occs[oi].nets
		for k, n := range m {
			m[k] = renum(n)
		}
	}
	e.occs = occs

	rf.resolveLabels(c, e)

	// the composition's own ports, for stitching one level up
	for _, cn := range core.CompositionConnectors(c, rf.instConns) {
		net := int32(-1)
		if n, ok := e.portAt[portKey{cn.At.X, cn.At.Y, cn.Layer}]; ok {
			net = n
		}
		e.ports = append(e.ports, port{name: cn.Name, at: cn.At, layer: cn.Layer, side: cn.Side, net: net})
	}

	// the composition's boundary: every copy's boundary material still
	// within the requested reach of the composition's box
	inner := c.BBox().Inset(reach)
	for _, cr := range copies {
		for _, bf := range cr.boundary {
			if inner.ContainsRect(bf.r) {
				continue
			}
			bf.net = renum(cr.base + bf.net)
			e.boundary = append(e.boundary, bf)
		}
	}
	return e
}

// seamUnions applies the abutment contract: for every pair of copies
// whose bounding boxes touch, boundary material on the same layer that
// touches across the seam — and whose drawing leaf occurrences' boxes
// touch, the same provenance test the DRC trusts — carries one net.
func seamUnions(copies []copyRef, uf *geom.UnionFind) {
	if len(copies) < 2 {
		return
	}
	boxes := make([]geom.Rect, len(copies))
	for i, cr := range copies {
		boxes[i] = cr.bbox
	}
	ix := geom.NewIndexFrom(boxes)
	ix.Build()
	var mine, theirs []bfrag
	for u := range copies {
		ix.QueryRect(copies[u].bbox, func(v int) bool {
			if v <= u {
				return true
			}
			bu, bv := copies[u].bbox, copies[v].bbox
			// the seam window: the (possibly degenerate) box
			// intersection, inflated by the contract's reach — every
			// cross-copy contact point lies inside it
			sx0, sy0 := max(bu.Min.X, bv.Min.X), max(bu.Min.Y, bv.Min.Y)
			sx1, sy1 := min(bu.Max.X, bv.Max.X), min(bu.Max.Y, bv.Max.Y)
			if sx0 > sx1 || sy0 > sy1 {
				return true
			}
			win := geom.R(sx0-seamReach, sy0-seamReach, sx1+seamReach, sy1+seamReach)
			// per-pair trust depth: only material within this seam's own
			// reach of its copy's box participates. The filter makes the
			// union set a function of the current placement alone —
			// entries retain material to the deepest reach they have
			// ever needed, and deeper-than-needed retention must not
			// union more than a freshly derived entry would.
			innerU := bu.Inset(seamDepth(bu, bv))
			innerV := bv.Inset(seamDepth(bv, bu))
			mine = mine[:0]
			for _, bf := range copies[u].boundary {
				if bf.r.Touches(win) && !innerU.ContainsRect(bf.r) {
					mine = append(mine, bf)
				}
			}
			if len(mine) == 0 {
				return true
			}
			theirs = theirs[:0]
			for _, bf := range copies[v].boundary {
				if bf.r.Touches(win) && !innerV.ContainsRect(bf.r) {
					theirs = append(theirs, bf)
				}
			}
			for _, fu := range mine {
				for _, fv := range theirs {
					if fu.layer == fv.layer && fu.leafBox.Touches(fv.leafBox) && fu.r.Touches(fv.r) {
						uf.Union(int(copies[u].base+fu.net), int(copies[v].base+fv.net))
					}
				}
			}
			return true
		})
	}
}

// fnv-1a, the hash behind signatures and refinement colors (shared
// with the hierarchical certificate engine through internal/seam).
func fnvInit() uint64 { return seam.FNVInit() }

func fnvMix(h, v uint64) uint64 { return seam.FNVMix(h, v) }

// pruneStale bounds the memo when a long-lived session works over
// snapshot clones: every frozen generation of an edited composition is
// a fresh *Cell, so without pruning the maps would grow one entry per
// verified generation. Reachability from the cell being derived
// identifies the live clone set; superseded clones (entries whose key
// is a snapshot clone no longer reachable) are dropped. The walk is
// gated on the memo actually bloating, so the steady state — verify,
// edit, verify — pays nothing.
func (rf *Reference) pruneStale(c *core.Cell) {
	if len(rf.memo) < 2*len(c.Instances)+64 {
		return
	}
	cells := map[*core.Cell]bool{}
	insts := map[*core.Instance]bool{}
	var walk func(*core.Cell)
	walk = func(x *core.Cell) {
		if cells[x] {
			return
		}
		cells[x] = true
		for _, in := range x.Instances {
			insts[in] = true
			walk(in.Cell)
		}
	}
	walk(c)
	for mc := range rf.memo {
		if mc.Origin() != mc && !cells[mc] {
			delete(rf.memo, mc)
			delete(rf.ids, mc)
		}
	}
	for in := range rf.conns {
		if !insts[in] {
			delete(rf.conns, in)
		}
	}
	for in := range rf.parts {
		if !insts[in] {
			delete(rf.parts, in)
		}
	}
}
