package lvs

import (
	"fmt"

	"riot/internal/core"
	"riot/internal/extract"
	"riot/internal/verify"
)

// Incremental is the edit-loop entry point: one Incremental holds the
// reference memo (leaf extractions, per-cell stitches) and the last
// verdict, keyed on the editor's generation. The layout side splices
// off the shared verify.Verifier — the same generation-keyed cache the
// DRC and EXTRACT commands use — so a one-cell edit re-extracts only
// the disturbed geometry, re-stitches only the edited composition's
// entry (every leaf netlist and untouched sub-cell entry is reused),
// and re-labels from there; an unchanged generation returns the cached
// verdict outright. The verdict is identical to a from-scratch
// CheckCell — the caches are invisible except as speed.
type Incremental struct {
	// Ref is the reference-netlist memo; usable directly when a caller
	// wants the reference netlist itself.
	Ref Reference

	cell *core.Cell
	gen  uint64
	res  *Result
	have bool
}

// Check runs LVS on the editor's cell through the shared verifier.
func (inc *Incremental) Check(ed *core.Editor, v *verify.Verifier) (*Result, error) {
	rep, err := v.Verify(ed)
	if err != nil {
		return nil, err
	}
	if inc.have && inc.cell == ed.Cell && inc.gen == rep.Gen {
		return inc.res, nil
	}
	res, err := inc.compare(ed.Cell, ed.Declared, rep)
	if err != nil {
		return nil, err
	}
	inc.cell, inc.gen, inc.res, inc.have = ed.Cell, rep.Gen, res, true
	return res, nil
}

// CheckCell runs LVS on a cell outside any editor, still through the
// verifier's cache (a full, cache-priming run) and the reference memo.
// No editing session means no declared records: the reference is the
// cell's structure alone.
func (inc *Incremental) CheckCell(cell *core.Cell, v *verify.Verifier) (*Result, error) {
	rep, err := v.VerifyCell(cell)
	if err != nil {
		return nil, err
	}
	inc.have = false // verdict cache is per-editor-generation only
	return inc.compare(cell, nil, rep)
}

// compare derives the reference and compares the verifier's circuit
// against it.
func (inc *Incremental) compare(cell *core.Cell, declared []core.Connection, rep *verify.Report) (*Result, error) {
	if rep.CircuitErr != nil {
		return nil, fmt.Errorf("lvs: %s: layout extraction failed: %w", cell.Name, rep.CircuitErr)
	}
	ref, err := inc.Ref.Netlist(cell, declared)
	if err != nil {
		return nil, err
	}
	return Compare(ref, FromCircuit(rep.Circuit)), nil
}

// CheckCell is the from-scratch convenience: a fresh reference
// derivation against a fresh extraction, no caches involved. Tests and
// the scale benchmark use it as the baseline the incremental path must
// reproduce verdict-identically.
func CheckCell(cell *core.Cell) (*Result, error) {
	ckt, err := extract.FromCell(cell)
	if err != nil {
		return nil, fmt.Errorf("lvs: %s: layout extraction failed: %w", cell.Name, err)
	}
	var rf Reference
	ref, err := rf.Netlist(cell, nil)
	if err != nil {
		return nil, err
	}
	return Compare(ref, FromCircuit(ckt)), nil
}

// CheckEditor is the from-scratch path for a cell under edit, honoring
// the session's declared connection records without any caching.
func CheckEditor(ed *core.Editor) (*Result, error) {
	ckt, err := extract.FromCell(ed.Cell)
	if err != nil {
		return nil, fmt.Errorf("lvs: %s: layout extraction failed: %w", ed.Cell.Name, err)
	}
	var rf Reference
	ref, err := rf.Netlist(ed.Cell, ed.Declared)
	if err != nil {
		return nil, err
	}
	return Compare(ref, FromCircuit(ckt)), nil
}
