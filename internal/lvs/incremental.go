package lvs

import (
	"fmt"

	"riot/internal/core"
	"riot/internal/extract"
	"riot/internal/flatten"
	"riot/internal/obs"
	"riot/internal/verify"
)

// Incremental is the edit-loop entry point: one Incremental holds the
// reference memo (leaf extractions, per-cell stitches) and the last
// verdict, keyed on the editor's generation. The layout side splices
// off the shared verify.Verifier — the same generation-keyed cache the
// DRC and EXTRACT commands use — so a one-cell edit re-extracts only
// the disturbed geometry, re-stitches only the edited composition's
// entry (every leaf netlist and untouched sub-cell entry is reused),
// and re-labels from there; an unchanged generation returns the cached
// verdict outright. The verdict is identical to a from-scratch
// CheckCell — the caches are invisible except as speed.
type Incremental struct {
	// Ref is the reference-netlist memo; usable directly when a caller
	// wants the reference netlist itself.
	Ref Reference
	// Certs records hierarchical sub-cell certificates across runs:
	// each distinct sub-cell signature is matched once, and certified
	// occurrences compare collapsed (see certificate.go). Because the
	// store and the reference memo persist across generations, an edit
	// re-matches nothing and refinement warm-starts from the certified
	// boundary anchors — only the un-certified region around the edit
	// is re-refined.
	Certs CertStore
	// Trace, when enabled, records an "lvs" span per Check with the
	// verifier's span tree, a "reference" derivation span and a "match"
	// span nested inside; nil records nothing and costs nothing.
	Trace *obs.Trace

	cell *core.Cell
	gen  uint64
	res  *Result
	have bool
	last *Result
}

// Last reports the most recent comparison's Result (through either
// Check or CheckCell), or nil before the first run. Stats surfaces read
// the certificate accounting from it.
func (inc *Incremental) Last() *Result { return inc.last }

// Check runs LVS on the editor's cell through the shared verifier.
// The run sees a frozen snapshot of the editor's current generation,
// so the verdict is deterministic per generation even while the editor
// keeps mutating.
func (inc *Incremental) Check(ed *core.Editor, v *verify.Verifier) (*Result, error) {
	return inc.CheckSnapshot(ed.Snapshot(), v)
}

// CheckSnapshot is Check against an explicit frozen generation. The
// verifier must be the session's own (they share the flatten result's
// occurrence identity); generations are globally unique, so the cached
// verdict can never alias another session's.
func (inc *Incremental) CheckSnapshot(snap *core.Snapshot, v *verify.Verifier) (*Result, error) {
	sp := inc.Trace.Begin("lvs")
	defer sp.End()
	rep, err := v.VerifySnapshot(snap)
	if err != nil {
		return nil, err
	}
	if inc.have && inc.cell == snap.Cell && inc.gen == rep.Gen {
		sp.Note("path", "cached")
		return inc.res, nil
	}
	// the hierarchical verify path skips flattening; LVS reads
	// occurrence identity from the flat result, so complete the report
	if err := v.EnsureFlat(rep); err != nil {
		return nil, err
	}
	res, err := inc.compare(snap.Cell, snap.Declared, rep)
	if err != nil {
		return nil, err
	}
	inc.cell, inc.gen, inc.res, inc.have = snap.Cell, rep.Gen, res, true
	return res, nil
}

// CheckCell runs LVS on a cell outside any editor, still through the
// verifier's cache (a full, cache-priming run) and the reference memo.
// No editing session means no declared records: the reference is the
// cell's structure alone.
func (inc *Incremental) CheckCell(cell *core.Cell, v *verify.Verifier) (*Result, error) {
	sp := inc.Trace.Begin("lvs")
	defer sp.End()
	rep, err := v.VerifyCell(cell)
	if err != nil {
		return nil, err
	}
	if err := v.EnsureFlat(rep); err != nil {
		return nil, err
	}
	inc.have = false // verdict cache is per-editor-generation only
	return inc.compare(cell, nil, rep)
}

// compare derives the reference and compares the verifier's circuit
// against it, through the certificate collapse.
func (inc *Incremental) compare(cell *core.Cell, declared []core.Connection, rep *verify.Report) (*Result, error) {
	if rep.CircuitErr != nil {
		return nil, fmt.Errorf("lvs: %s: layout extraction failed: %w", cell.Name, rep.CircuitErr)
	}
	rsp := inc.Trace.Begin("reference")
	ref, occs, err := inc.Ref.NetlistOccs(cell, declared)
	rsp.End()
	if err != nil {
		return nil, err
	}
	msp := inc.Trace.Begin("match")
	res := compareHier(&inc.Ref, &inc.Certs, occs, ref, rep.Circuit, rep.Flat)
	msp.End()
	inc.last = res
	return res, nil
}

// checkScratch is the shared from-scratch path: fresh reference memo,
// fresh certificate store, fresh extraction.
func checkScratch(cell *core.Cell, declared []core.Connection) (*Result, error) {
	fr, err := flatten.Cell(cell, flatten.Options{})
	if err != nil {
		return nil, fmt.Errorf("lvs: %s: layout extraction failed: %w", cell.Name, err)
	}
	ckt, _, err := extract.SolveNets(fr)
	if err != nil {
		return nil, fmt.Errorf("lvs: %s: layout extraction failed: %w", cell.Name, err)
	}
	var rf Reference
	var cs CertStore
	ref, occs, err := rf.NetlistOccs(cell, declared)
	if err != nil {
		return nil, err
	}
	return compareHier(&rf, &cs, occs, ref, ckt, fr), nil
}

// CheckCell is the from-scratch convenience: a fresh reference
// derivation against a fresh extraction, no caches involved. Tests and
// the scale benchmark use it as the baseline the incremental path must
// reproduce verdict-identically.
func CheckCell(cell *core.Cell) (*Result, error) {
	return checkScratch(cell, nil)
}

// CheckEditor is the from-scratch path for a cell under edit, honoring
// the session's declared connection records without any caching.
func CheckEditor(ed *core.Editor) (*Result, error) {
	return checkScratch(ed.Cell, ed.Declared)
}

// CheckCellFlat is the certificate-free baseline: a plain flat
// comparison of a fresh reference derivation against a fresh
// extraction. The differential tests pin that its verdict — Clean and
// every Mismatch — is identical to the certified paths'.
func CheckCellFlat(cell *core.Cell) (*Result, error) {
	return checkFlat(cell, nil)
}

// CheckEditorFlat is CheckCellFlat for a cell under edit, honoring the
// session's declared connection records.
func CheckEditorFlat(ed *core.Editor) (*Result, error) {
	return checkFlat(ed.Cell, ed.Declared)
}

func checkFlat(cell *core.Cell, declared []core.Connection) (*Result, error) {
	ckt, err := extract.FromCell(cell)
	if err != nil {
		return nil, fmt.Errorf("lvs: %s: layout extraction failed: %w", cell.Name, err)
	}
	var rf Reference
	ref, err := rf.Netlist(cell, declared)
	if err != nil {
		return nil, err
	}
	return Compare(ref, FromCircuit(ckt)), nil
}
