package lvs

import (
	"fmt"
	"sort"

	"riot/internal/castore"
	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/rules"
	"riot/internal/sticks"
	"riot/internal/verify"
)

// On-disk persistence of the two LVS memos that survive restarts
// usefully: leaf reference entries (a leaf's standalone extraction —
// netlist, ports, boundary material) and sub-cell certificates (the
// one-time reference/extracted match per distinct cell). Both are
// keyed by castore content signatures, so a fresh process recognizes
// yesterday's cells; composition stitches are NOT persisted — they are
// cheap placement-dependent assembly over the leaf entries.
//
// Payload decoders never trust what they read: every net index is
// checked against the entry's own net space and any inconsistency
// discards the entry (castore.Store.Discard) and falls back to a cold
// recompute, keeping verdicts byte-identical to cache-free runs.

const (
	nsCert = "lvscert"
	nsRef  = "lvsref"
)

// lvsFingerprint is the payload schema identity for one namespace: the
// encoding version plus the process constants the payloads depend on.
func lvsFingerprint(kind string) uint64 {
	return castore.Fingerprint(
		kind, "enc-v1",
		fmt.Sprintf("lambda=%d seam=%d", rules.Lambda, seamReach),
	)
}

// AttachDisk connects the reference memo to a content-addressed store
// (on-disk, a server's shared in-memory tier, or both): leaf entries
// load by content signature before extracting and store after. A nil
// store detaches.
func (rf *Reference) AttachDisk(st castore.Blob, sg *castore.Signer) {
	rf.disk, rf.signer = st, sg
}

// AttachDisk connects the certificate store to a persistent store:
// the one-time sub-cell match loads by content signature before being
// performed and stores after. A nil store detaches.
func (cs *CertStore) AttachDisk(st castore.Blob, sg *castore.Signer) {
	cs.disk, cs.signer = st, sg
}

// AttachDisk connects both of the session's LVS memos to a persistent
// store and the verifier's flatten cache alongside (the three caches
// share one content-signature space, so one attach call wires a whole
// verification session).
func (inc *Incremental) AttachDisk(st castore.Blob, sg *castore.Signer, v *verify.Verifier) {
	inc.Ref.AttachDisk(st, sg)
	inc.Certs.AttachDisk(st, sg)
	if v != nil {
		v.AttachDisk(st, sg)
	}
}

// diskLoadLeaf fetches and validates a leaf entry. An entry stored
// with a shallower boundary reach than the caller needs reports a miss
// (the recompute overwrites it with the deeper retention).
func (rf *Reference) diskLoadLeaf(c *core.Cell, minReach int) *refEntry {
	if rf.disk == nil || rf.signer == nil {
		return nil
	}
	key, err := rf.signer.Cell(c)
	if err != nil {
		return nil
	}
	payload, ok := rf.disk.Get(nsRef, key, lvsFingerprint("lvs-ref"))
	if !ok {
		return nil
	}
	e, err := decodeLeafEntry(payload)
	if err != nil {
		rf.disk.Discard(nsRef, key, err.Error())
		return nil
	}
	if e.reach < minReach {
		return nil
	}
	// identity occurrence map and the process-local signature, exactly
	// as leafEntry builds them
	ident := make([]int32, e.nets)
	for n := range ident {
		ident[n] = int32(n)
	}
	e.occs = []refOcc{{cell: c, sig: rf.sigOf(c), nets: ident}}
	return e
}

// diskStoreLeaf persists a freshly derived leaf entry (best-effort).
func (rf *Reference) diskStoreLeaf(c *core.Cell, e *refEntry) {
	if rf.disk == nil || rf.signer == nil || e.err != nil {
		return
	}
	key, err := rf.signer.Cell(c)
	if err != nil {
		return
	}
	rf.disk.Put(nsRef, key, lvsFingerprint("lvs-ref"), encodeLeafEntry(e))
}

func encodeLeafEntry(e *refEntry) []byte {
	var enc castore.Enc
	enc.Int(e.reach)
	enc.Int(e.nets)
	encodeDevices(&enc, e.devices)
	enc.Int(len(e.ports))
	for _, p := range e.ports {
		enc.Str(p.name)
		enc.Int(p.at.X)
		enc.Int(p.at.Y)
		enc.Str(string(p.layer))
		enc.U8(uint8(p.side))
		enc.Int(int(p.net))
	}
	enc.Int(len(e.boundary))
	for _, bf := range e.boundary {
		enc.Str(string(bf.layer))
		encodeRect(&enc, bf.r)
		encodeRect(&enc, bf.leafBox)
		enc.Int(int(bf.net))
	}
	encodeLabels(&enc, e.labels)
	return enc.Bytes()
}

func decodeLeafEntry(payload []byte) (*refEntry, error) {
	d := castore.NewDec(payload)
	e := &refEntry{reach: d.Int(), nets: d.Int(), portAt: map[portKey]int32{}}
	var err error
	if e.devices, err = decodeDevices(d, e.nets); err != nil {
		return nil, err
	}
	nPorts := d.Len(8)
	for i := 0; i < nPorts; i++ {
		p := port{name: d.Str()}
		p.at = geom.Pt(d.Int(), d.Int())
		p.layer = geom.Layer(d.Str())
		p.side = geom.Side(d.U8())
		p.net = int32(d.Int())
		if d.Err() == nil && (p.net < -1 || int(p.net) >= e.nets) {
			return nil, fmt.Errorf("castore: decode: port net %d out of %d", p.net, e.nets)
		}
		e.ports = append(e.ports, p)
		// replay leafEntry's coincidence resolution: first registration
		// wins unless a later connector at the point resolved to material
		key := portKey{p.at.X, p.at.Y, p.layer}
		if _, dup := e.portAt[key]; !dup || p.net >= 0 {
			e.portAt[key] = p.net
		}
	}
	nB := d.Len(8)
	for i := 0; i < nB; i++ {
		bf := bfrag{layer: geom.Layer(d.Str())}
		bf.r = decodeRect(d)
		bf.leafBox = decodeRect(d)
		bf.net = int32(d.Int())
		if d.Err() == nil && (bf.net < 0 || int(bf.net) >= e.nets) {
			return nil, fmt.Errorf("castore: decode: boundary net %d out of %d", bf.net, e.nets)
		}
		e.boundary = append(e.boundary, bf)
	}
	if e.labels, err = decodeLabels(d, e.nets); err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	if e.reach < 0 || e.nets < 0 {
		return nil, fmt.Errorf("castore: decode: negative reach or net count")
	}
	return e, nil
}

// diskLoad fetches and validates the cell's certificate.
func (cs *CertStore) diskLoad(oc refOcc) *certificate {
	if cs.disk == nil || cs.signer == nil {
		return nil
	}
	key, err := cs.signer.Cell(oc.cell)
	if err != nil {
		return nil
	}
	payload, ok := cs.disk.Get(nsCert, key, lvsFingerprint("lvs-cert"))
	if !ok {
		return nil
	}
	ct, err := decodeCertificate(payload)
	if err != nil {
		cs.disk.Discard(nsCert, key, err.Error())
		return nil
	}
	ct.sig = oc.sig
	return ct
}

// diskStore persists a freshly matched certificate (best-effort).
func (cs *CertStore) diskStore(c *core.Cell, ct *certificate) {
	if cs.disk == nil || cs.signer == nil {
		return
	}
	key, err := cs.signer.Cell(c)
	if err != nil {
		return
	}
	cs.disk.Put(nsCert, key, lvsFingerprint("lvs-cert"), encodeCertificate(ct))
}

func encodeCertificate(ct *certificate) []byte {
	var enc castore.Enc
	enc.Bool(ct.ok)
	enc.Int(ct.nets)
	encodeDevices(&enc, ct.devs)
	enc.Int(len(ct.boundary))
	for _, b := range ct.boundary {
		enc.Int(int(b))
	}
	enc.Int(len(ct.interior))
	for _, b := range ct.interior {
		enc.Bool(b)
	}
	enc.Int(len(ct.pinCount))
	for _, p := range ct.pinCount {
		enc.Int(int(p))
	}
	enc.Int(len(ct.aliveInterior))
	for _, a := range ct.aliveInterior {
		enc.Int(int(a))
	}
	enc.Int(ct.redDevices)
	enc.Int(len(ct.witness))
	keys := make([]int, 0, len(ct.witness))
	for k := range ct.witness {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		enc.Int(k)
		enc.Int(ct.witness[k])
	}
	return enc.Bytes()
}

func decodeCertificate(payload []byte) (*certificate, error) {
	d := castore.NewDec(payload)
	ct := &certificate{ok: d.Bool(), nets: d.Int()}
	var err error
	if ct.devs, err = decodeDevices(d, ct.nets); err != nil {
		return nil, err
	}
	nB := d.Len(8)
	for i := 0; i < nB; i++ {
		b := d.Int()
		if d.Err() == nil && (b < 0 || b >= ct.nets) {
			return nil, fmt.Errorf("castore: decode: boundary net %d out of %d", b, ct.nets)
		}
		ct.boundary = append(ct.boundary, int32(b))
	}
	if n := d.Len(1); n > 0 {
		ct.interior = make([]bool, n)
		for i := range ct.interior {
			ct.interior[i] = d.Bool()
		}
	}
	if n := d.Len(8); n > 0 {
		ct.pinCount = make([]int32, n)
		for i := range ct.pinCount {
			ct.pinCount[i] = int32(d.Int())
		}
	}
	nA := d.Len(8)
	for i := 0; i < nA; i++ {
		a := d.Int()
		if d.Err() == nil && (a < 0 || a >= ct.nets) {
			return nil, fmt.Errorf("castore: decode: alive-interior net %d out of %d", a, ct.nets)
		}
		ct.aliveInterior = append(ct.aliveInterior, int32(a))
	}
	ct.redDevices = d.Int()
	nW := d.Len(16)
	if nW > 0 {
		ct.witness = make(map[int]int, nW)
		for i := 0; i < nW; i++ {
			k := d.Int()
			ct.witness[k] = d.Int()
		}
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	if ct.nets < 0 || ct.redDevices < 0 {
		return nil, fmt.Errorf("castore: decode: negative count")
	}
	// the isolation arrays must span the net space exactly (compare
	// paths index them by net id without further checks)
	if len(ct.interior) != ct.nets || len(ct.pinCount) != ct.nets {
		return nil, fmt.Errorf("castore: decode: isolation arrays sized %d/%d for %d nets",
			len(ct.interior), len(ct.pinCount), ct.nets)
	}
	return ct, nil
}

func encodeDevices(enc *castore.Enc, devs []Device) {
	enc.Int(len(devs))
	for _, d := range devs {
		enc.U8(uint8(d.Kind))
		enc.Int(d.Gate)
		enc.Int(d.A)
		enc.Int(d.B)
	}
}

func decodeDevices(d *castore.Dec, nets int) ([]Device, error) {
	n := d.Len(25)
	if n == 0 {
		return nil, d.Err()
	}
	devs := make([]Device, n)
	for i := range devs {
		dev := Device{Kind: sticks.DeviceKind(d.U8()), Gate: d.Int(), A: d.Int(), B: d.Int()}
		if d.Err() == nil {
			for _, net := range [3]int{dev.Gate, dev.A, dev.B} {
				if net < 0 || net >= nets {
					return nil, fmt.Errorf("castore: decode: device net %d out of %d", net, nets)
				}
			}
		}
		devs[i] = dev
	}
	return devs, d.Err()
}

func encodeLabels(enc *castore.Enc, labels map[string]int) {
	enc.Int(len(labels))
	names := make([]string, 0, len(labels))
	for name := range labels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		enc.Str(name)
		enc.Int(labels[name])
	}
}

func decodeLabels(d *castore.Dec, nets int) (map[string]int, error) {
	n := d.Len(16)
	labels := make(map[string]int, n)
	for i := 0; i < n; i++ {
		name := d.Str()
		net := d.Int()
		if d.Err() == nil && (net < 0 || net >= nets) {
			return nil, fmt.Errorf("castore: decode: label %q net %d out of %d", name, net, nets)
		}
		labels[name] = net
	}
	return labels, d.Err()
}

func encodeRect(enc *castore.Enc, r geom.Rect) {
	enc.Int(r.Min.X)
	enc.Int(r.Min.Y)
	enc.Int(r.Max.X)
	enc.Int(r.Max.Y)
}

func decodeRect(d *castore.Dec) geom.Rect {
	return geom.Rect{Min: geom.Pt(d.Int(), d.Int()), Max: geom.Pt(d.Int(), d.Int())}
}
