package lvs

import (
	"testing"

	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/sticks"
)

// Deep-abutment regression tests: the seam trust used to reach a fixed
// 4 lambda into each cell, so an ABUT OVERLAP deeper than that
// connected material the reference could not see and was mis-reported
// as a short. The reach is now derived per seam from the actual
// overlap depth of the two placed boxes.

// deepPair builds a two-cell editor: REACHER's metal bar spans its
// whole cell and pokes into DEEP's box, which is placed overlapping by
// 10 lambda. stubLo/stubHi place DEEP's interior metal stub in
// cell-local lambda; the contact with the bar happens wherever the
// stub lands under the overlap.
func deepPair(t *testing.T, stubLo, stubHi int) *core.Editor {
	t.Helper()
	reacher := &sticks.Cell{
		Name:   "REACHER",
		HasBox: true,
		Box:    geom.R(0, 0, 20, 20),
		Wires:  []sticks.Wire{{Layer: geom.NM, Points: []geom.Point{geom.Pt(0, 10), geom.Pt(20, 10)}}},
		Connectors: []sticks.Connector{
			{Name: "P", At: geom.Pt(0, 10), Layer: geom.NM, Side: geom.SideLeft},
		},
	}
	deep := &sticks.Cell{
		Name:   "DEEP",
		HasBox: true,
		Box:    geom.R(0, 0, 20, 20),
		Wires:  []sticks.Wire{{Layer: geom.NM, Points: []geom.Point{geom.Pt(stubLo, 10), geom.Pt(stubHi, 10)}}},
		Connectors: []sticks.Connector{
			{Name: "Q", At: geom.Pt(stubLo, 10), Layer: geom.NM},
		},
	}
	d := core.NewDesign()
	for _, sc := range []*sticks.Cell{reacher, deep} {
		cell, err := core.NewLeafFromSticks(sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if err := d.AddCell(cell); err != nil {
			t.Fatal(err)
		}
	}
	top := core.NewComposition("OVER")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateInstance("REACHER", "a", geom.MakeTransform(geom.R0, geom.Pt(0, 0)), 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	// DEEP overlaps REACHER by 10 lambda: an ABUT OVERLAP far past the
	// base 4-lambda seam trust
	if _, err := e.CreateInstance("DEEP", "b", geom.MakeTransform(geom.R0, geom.Pt(10*lam, 0)), 1, 1, 0, 0); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDeepAbutOverlapClean: the bar meets a stub buried 8 lambda
// inside the overlapped cell — deeper than the old fixed trust reach,
// which mis-reported this sanctioned contact as a short. The layout
// joins a.P and b.Q into one net; the reference must too.
func TestDeepAbutOverlapClean(t *testing.T) {
	// stub at local x 8..12: contact with the bar at local depth 8..10,
	// and the stub lies wholly outside the old 4-lambda boundary band
	e := deepPair(t, 8, 12)
	res, err := CheckEditor(e)
	mustClean(t, res, err, "deep overlap (8-lambda-deep contact)")
}

// TestDeepAbutOverlapShallowContactStaysClean is the clean-by-luck
// regression: the overlap is just as deep (10 lambda), but the contact
// material happens to sit inside the old 4-lambda band, so the old
// code verified it clean by accident. The per-seam reach must keep it
// clean.
func TestDeepAbutOverlapShallowContactStaysClean(t *testing.T) {
	// stub at local x 0..4: within the old band, still under the overlap
	e := deepPair(t, 0, 4)
	res, err := CheckEditor(e)
	mustClean(t, res, err, "deep overlap (shallow contact)")
}

// TestDeepAbutOverlapWasSpuriousShort documents the fixed failure
// mode at the unit level: with the per-seam reach, the DEEP entry must
// retain its interior stub as boundary material when the neighbor
// overlaps 10 lambda deep, and the stitched reference must carry a.P
// and b.Q on one net exactly like the layout.
func TestDeepAbutOverlapWasSpuriousShort(t *testing.T) {
	e := deepPair(t, 8, 12)
	var rf Reference
	ref, err := rf.Netlist(e.Cell, nil)
	if err != nil {
		t.Fatal(err)
	}
	np, okP := ref.Labels["a.P"]
	nq, okQ := ref.Labels["b.Q"]
	if !okP || !okQ {
		t.Fatalf("reference labels missing: %v", ref.Labels)
	}
	if np != nq {
		t.Fatalf("reference keeps a.P (net %d) and b.Q (net %d) apart; the 10-lambda ABUT OVERLAP sanctions the contact", np, nq)
	}
}
