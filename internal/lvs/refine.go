package lvs

import (
	"runtime"
	"slices"
	"sync"
)

// Partition-refinement canonical labeling, the comparison core. Both
// reduced netlists are colored in ONE shared class space: a class is a
// claim that its members are mutually indistinguishable, and the claim
// is iteratively refined — a device's signature folds its kind,
// multiplicity and pin classes, a net's folds its own class and its
// incident (device class, pin role) multiset — until no class splits.
// Two isomorphic netlists always end with identical class histograms
// (every refinement step treats the sides identically), so any class
// whose member count differs between the sides is a structural
// mismatch.
//
// Refinement is split-only: when a class's members diverge into
// several signatures, one subgroup keeps the class id (the members the
// round did not touch, else the smallest signature) and the rest get
// fresh ids, in deterministic (class, signature) order. A round that
// merely recomputes identical signatures moves nothing, so work is
// proportional to actual refinement: the recoloring wavefront follows
// the frontier of changed classes and dies out once the partition is
// stable, instead of re-hashing the whole graph for its diameter. The
// frontier can over-refine — a node skipped because its neighborhood
// was quiet keeps its class even if a distant node coincidentally
// converged to the same signature — but it over-refines both sides
// identically (isomorphic twins dirty in the same rounds and hash to
// the same signatures), so verdicts are unaffected.
//
// Recoloring a round's frontier is data-parallel: every dirty node's
// signature depends only on the previous round's classes, so the
// frontier is chunked across GOMAXPROCS workers and the results merge
// in deterministic node order — the merge, not the schedule, assigns
// class ids.

// pinRef is one device incidence of a net.
type pinRef struct {
	dev  int32
	role int8 // 0 = channel, 1 = gate
}

// mside is one side's state inside the matcher.
type mside struct {
	r        *rnetlist
	netAdj   [][]pinRef
	netClass []int32 // -1 for dead nets
	devClass []int32
	netSig   []uint64 // last computed signature per net
	devSig   []uint64
}

// matcher refines the two sides to a stable shared partition.
type matcher struct {
	s     [2]*mside
	next  int32   // next fresh class id
	count []int32 // members per class, both sides combined
}

// newMatcher builds the matcher state. anchors assigns shared seed
// classes: anchors[side][net] > 0 means the net starts in that class
// (the same id on both sides for a consistent label cluster), 0 means
// the generic starting class. Devices all start in one class;
// seedCount is the highest anchor id in use.
func newMatcher(ref, lay *rnetlist, anchors [2][]int32, seedCount int32) *matcher {
	m := &matcher{next: seedCount + 2}
	m.count = make([]int32, m.next, m.next+64)
	for si, r := range []*rnetlist{ref, lay} {
		sd := &mside{
			r:        r,
			netAdj:   make([][]pinRef, r.nets),
			netClass: make([]int32, r.nets),
			devClass: make([]int32, len(r.devs)),
			netSig:   make([]uint64, r.nets),
			devSig:   make([]uint64, len(r.devs)),
		}
		for i, d := range r.devs {
			sd.netAdj[d.a] = append(sd.netAdj[d.a], pinRef{int32(i), 0})
			sd.netAdj[d.b] = append(sd.netAdj[d.b], pinRef{int32(i), 0})
			for _, g := range d.gates {
				sd.netAdj[g] = append(sd.netAdj[g], pinRef{int32(i), 1})
			}
		}
		for n := 0; n < r.nets; n++ {
			switch {
			case !r.alive[n]:
				sd.netClass[n] = -1
			case anchors[si] != nil && anchors[si][n] > 0:
				sd.netClass[n] = anchors[si][n]
				m.count[anchors[si][n]]++
			default:
				sd.netClass[n] = 0
				m.count[0]++
			}
		}
		// devices share the seed class just past the anchor ids
		devSeed := m.next - 1
		for i := range sd.devClass {
			sd.devClass[i] = devSeed
			m.count[devSeed]++
		}
		m.s[si] = sd
	}
	return m
}

// refineAll runs rounds to the fixpoint from an all-dirty frontier.
func (m *matcher) refineAll() {
	var devs, nets [2][]int32
	for si, sd := range m.s {
		for i := range sd.devClass {
			devs[si] = append(devs[si], int32(i))
		}
		for n := 0; n < sd.r.nets; n++ {
			if sd.netClass[n] >= 0 {
				nets[si] = append(nets[si], int32(n))
			}
		}
	}
	m.refineFrom(devs, nets)
}

// refineFrom alternates device and net recoloring until both frontiers
// die out. Only genuine class splits propagate, so the loop terminates
// after at most one split per node.
func (m *matcher) refineFrom(dirtyDevs, dirtyNets [2][]int32) {
	for len(dirtyDevs[0])+len(dirtyDevs[1])+len(dirtyNets[0])+len(dirtyNets[1]) > 0 {
		changedDevs := m.recolor(true, dirtyDevs)
		nextNets := dirtyNets
		for si, devs := range changedDevs {
			sd := m.s[si]
			for _, di := range devs {
				d := sd.r.devs[di]
				nextNets[si] = append(nextNets[si], d.a, d.b)
				nextNets[si] = append(nextNets[si], d.gates...)
			}
			nextNets[si] = dedupSorted(nextNets[si])
		}
		changedNets := m.recolor(false, nextNets)
		dirtyNets = [2][]int32{}
		dirtyDevs = [2][]int32{}
		for si, nets := range changedNets {
			sd := m.s[si]
			for _, n := range nets {
				for _, p := range sd.netAdj[n] {
					dirtyDevs[si] = append(dirtyDevs[si], p.dev)
				}
			}
			dirtyDevs[si] = dedupSorted(dirtyDevs[si])
		}
	}
}

// dedupSorted sorts and deduplicates a frontier id list.
func dedupSorted(ids []int32) []int32 {
	slices.Sort(ids)
	out := ids[:0]
	for i, v := range ids {
		if i == 0 || v != ids[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// devSigOf computes a device's current signature.
func (sd *mside) devSigOf(di int32, scratch *[]int32) uint64 {
	d := sd.r.devs[di]
	h := fnvInit()
	h = fnvMix(h, uint64(uint32(sd.devClass[di])))
	h = fnvMix(h, uint64(d.kind))
	h = fnvMix(h, uint64(uint32(d.mult)))
	ca, cb := sd.netClass[d.a], sd.netClass[d.b]
	if cb < ca {
		ca, cb = cb, ca
	}
	h = fnvMix(h, uint64(uint32(ca)))
	h = fnvMix(h, uint64(uint32(cb)))
	g := (*scratch)[:0]
	for _, gn := range d.gates {
		g = append(g, sd.netClass[gn])
	}
	slices.Sort(g)
	for _, c := range g {
		h = fnvMix(h, uint64(uint32(c)))
	}
	*scratch = g
	return h
}

// netSigOf computes a net's current signature.
func (sd *mside) netSigOf(n int32, scratch *[]uint64) uint64 {
	h := fnvInit()
	h = fnvMix(h, uint64(uint32(sd.netClass[n])))
	inc := (*scratch)[:0]
	for _, p := range sd.netAdj[n] {
		inc = append(inc, uint64(uint32(sd.devClass[p.dev]))<<1|uint64(p.role))
	}
	slices.Sort(inc)
	for _, v := range inc {
		h = fnvMix(h, v)
	}
	*scratch = inc
	return h
}

// parallelMinSigs is the frontier size under which signatures compute
// inline; tiny frontiers are not worth the goroutine handoff.
const parallelMinSigs = 4096

// computeSigs fills sigs[i] for each dirty id, fanning across
// GOMAXPROCS workers for large frontiers. The signature function reads
// only previous-round classes, so the fan-out is deterministic.
func computeSigs(sd *mside, devices bool, ids []int32, sigs []uint64) {
	one := func(lo, hi int) {
		var si32 []int32
		var su64 []uint64
		for i := lo; i < hi; i++ {
			if devices {
				sigs[i] = sd.devSigOf(ids[i], &si32)
			} else {
				sigs[i] = sd.netSigOf(ids[i], &su64)
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if len(ids) < parallelMinSigs || workers < 2 {
		one(0, len(ids))
		return
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*len(ids)/workers, (w+1)*len(ids)/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			one(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// mover is one node whose signature moved this round.
type mover struct {
	side int8
	id   int32
	sig  uint64
}

// recolor recomputes the dirty nodes' signatures and splits classes
// whose members diverged. Within one old class, the subgroup that can
// claim continuity keeps the id — the members the round did not move,
// else the smallest signature — and every other subgroup gets a fresh
// id in deterministic order. Returns the nodes whose class changed.
func (m *matcher) recolor(devices bool, dirty [2][]int32) [2][]int32 {
	// signatures, in parallel per side
	var sigs [2][]uint64
	for si, ids := range dirty {
		sigs[si] = make([]uint64, len(ids))
		computeSigs(m.s[si], devices, ids, sigs[si])
	}

	// gather the movers, grouped by old class
	byClass := map[int32][]mover{}
	var classes []int32
	for si, ids := range dirty {
		sd := m.s[si]
		for i, id := range ids {
			var cls int32
			var stored *uint64
			if devices {
				cls, stored = sd.devClass[id], &sd.devSig[id]
			} else {
				cls, stored = sd.netClass[id], &sd.netSig[id]
			}
			if cls < 0 || sigs[si][i] == *stored {
				continue
			}
			*stored = sigs[si][i]
			if _, ok := byClass[cls]; !ok {
				classes = append(classes, cls)
			}
			byClass[cls] = append(byClass[cls], mover{side: int8(si), id: id, sig: sigs[si][i]})
		}
	}
	slices.Sort(classes)

	var changed [2][]int32
	for _, cls := range classes {
		movers := byClass[cls]
		// distinct signatures, ascending — subgroup order
		sigSet := make([]uint64, 0, len(movers))
		for _, mv := range movers {
			sigSet = append(sigSet, mv.sig)
		}
		sigSet = dedupSortedU64(sigSet)
		remaining := m.count[cls] - int32(len(movers))
		keeper := -1 // index into sigSet that keeps cls
		if remaining == 0 {
			keeper = 0
		}
		if keeper == 0 && len(sigSet) == 1 {
			continue // the whole class moved together: a rename, not a split
		}
		// fresh ids for the non-keeper subgroups, in signature order
		newID := make([]int32, len(sigSet))
		for k := range sigSet {
			if k == keeper {
				newID[k] = cls
				continue
			}
			newID[k] = m.next
			m.next++
			m.count = append(m.count, 0)
		}
		for _, mv := range movers {
			k, _ := slices.BinarySearch(sigSet, mv.sig)
			if newID[k] == cls {
				continue
			}
			sd := m.s[mv.side]
			if devices {
				sd.devClass[mv.id] = newID[k]
			} else {
				sd.netClass[mv.id] = newID[k]
			}
			m.count[cls]--
			m.count[newID[k]]++
			changed[mv.side] = append(changed[mv.side], mv.id)
		}
	}
	return changed
}

func dedupSortedU64(vs []uint64) []uint64 {
	slices.Sort(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != vs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// histograms counts members per class on each side, for nets and
// devices.
func (m *matcher) histograms() (nets, devs [2]map[int32]int32) {
	for si, sd := range m.s {
		nets[si] = map[int32]int32{}
		for n := 0; n < sd.r.nets; n++ {
			if sd.netClass[n] >= 0 {
				nets[si][sd.netClass[n]]++
			}
		}
		devs[si] = map[int32]int32{}
		for _, c := range sd.devClass {
			devs[si][c]++
		}
	}
	return nets, devs
}

// balanced reports whether the two sides' class histograms agree.
func (m *matcher) balanced() bool {
	nets, devs := m.histograms()
	return mapsEqual(nets[0], nets[1]) && mapsEqual(devs[0], devs[1])
}

func mapsEqual(a, b map[int32]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// snapshot captures the matcher's mutable state for individualization
// backtracking.
type snapshot struct {
	netClass, devClass [2][]int32
	netSig, devSig     [2][]uint64
	next               int32
	count              []int32
}

func (m *matcher) save() *snapshot {
	sn := &snapshot{next: m.next, count: slices.Clone(m.count)}
	for si, sd := range m.s {
		sn.netClass[si] = slices.Clone(sd.netClass)
		sn.devClass[si] = slices.Clone(sd.devClass)
		sn.netSig[si] = slices.Clone(sd.netSig)
		sn.devSig[si] = slices.Clone(sd.devSig)
	}
	return sn
}

func (m *matcher) restore(sn *snapshot) {
	m.next = sn.next
	m.count = append(m.count[:0], sn.count...)
	for si, sd := range m.s {
		copy(sd.netClass, sn.netClass[si])
		copy(sd.devClass, sn.devClass[si])
		copy(sd.netSig, sn.netSig[si])
		copy(sd.devSig, sn.devSig[si])
	}
}

// individualize extends a balanced stable partition to an explicit
// net-to-net matching, then verifies the matching is a genuine
// isomorphism. While classes hold several nets, pairs are
// individualized (moved to fresh shared classes) and refinement
// re-runs from their neighborhoods, descending an aggression ladder:
//
//  1. pair EVERY member of every multi class at once — on independent
//     automorphic orbits (replicated cells, interchangeable stubs) any
//     pairing extends, and one wave finishes the whole design;
//  2. if that unbalances, one pair per class;
//  3. if that unbalances too, one class alone, trying each candidate.
//
// Wrong guesses roll back; bounded retries keep the worst case finite.
// The final map is checked outright — every ref device must map onto a
// lay device, every shared label onto its own net — so an accepted
// matching is a witness, not a heuristic: a pairing that slipped
// through balanced-but-wrong fails the verification and reports as
// unmatched rather than clean. Returns the ref-to-lay net map and
// whether a verified matching completed.
func (m *matcher) individualize() (map[int]int, bool) {
	retries := 256
	for {
		// per-side member counts per class; collect member lists only
		// for the (few) classes that are still ambiguous
		perSide := [2][]int32{}
		for si, sd := range m.s {
			perSide[si] = make([]int32, m.next)
			for n := 0; n < sd.r.nets; n++ {
				if c := sd.netClass[n]; c >= 0 {
					perSide[si][c]++
				}
			}
		}
		var multi []int32
		for c := int32(0); c < m.next; c++ {
			if perSide[0][c] > 1 || perSide[1][c] > 1 {
				multi = append(multi, c)
			}
		}
		if len(multi) == 0 {
			// all singletons: read the matching out and verify it
			pairRef := make([]int32, m.next)
			for i := range pairRef {
				pairRef[i] = -1
			}
			netMap := make(map[int]int, m.s[0].r.aliveCount)
			for n := 0; n < m.s[0].r.nets; n++ {
				if c := m.s[0].netClass[n]; c >= 0 {
					pairRef[c] = int32(n)
				}
			}
			for n := 0; n < m.s[1].r.nets; n++ {
				c := m.s[1].netClass[n]
				if c < 0 {
					continue
				}
				if pairRef[c] < 0 {
					return nil, false
				}
				netMap[int(pairRef[c])] = n
			}
			if len(netMap) != m.s[0].r.aliveCount || !m.verifyMap(netMap) {
				return nil, false
			}
			return netMap, true
		}
		isMulti := map[int32]bool{}
		for _, c := range multi {
			isMulti[c] = true
		}
		members := [2]map[int32][]int32{}
		for si, sd := range m.s {
			members[si] = map[int32][]int32{}
			for n := 0; n < sd.r.nets; n++ {
				if c := sd.netClass[n]; c >= 0 && isMulti[c] {
					members[si][c] = append(members[si][c], int32(n))
				}
			}
		}

		// rung 1: pair all members of all multi classes by position
		sn := m.save()
		var devs [2][]int32
		for _, c := range multi {
			rs, ls := members[0][c], members[1][c]
			if len(rs) != len(ls) {
				m.restore(sn)
				return nil, false
			}
			for k := range rs {
				m.pairNets(rs[k], ls[k], &devs)
			}
		}
		m.refineFrom([2][]int32{dedupSorted(devs[0]), dedupSorted(devs[1])}, [2][]int32{})
		if m.balanced() {
			continue
		}
		m.restore(sn)

		// rung 2: one pair per multi class
		sn = m.save()
		devs = [2][]int32{}
		for _, c := range multi {
			m.pairNets(members[0][c][0], members[1][c][0], &devs)
		}
		m.refineFrom([2][]int32{dedupSorted(devs[0]), dedupSorted(devs[1])}, [2][]int32{})
		if m.balanced() {
			continue
		}
		m.restore(sn)

		// rung 3: the lowest multi class alone, trying each candidate
		pick := multi[0]
		refNet := members[0][pick][0]
		ok := false
		for _, layNet := range members[1][pick] {
			sn := m.save()
			devs = [2][]int32{}
			m.pairNets(refNet, layNet, &devs)
			m.refineFrom(devs, [2][]int32{})
			if m.balanced() {
				ok = true
				break
			}
			m.restore(sn)
			if retries--; retries <= 0 {
				return nil, false
			}
		}
		if !ok {
			return nil, false
		}
	}
}

// pairNets individualizes one ref/lay net pair into a fresh shared
// class, collecting their adjacent devices into the frontier.
func (m *matcher) pairNets(refNet, layNet int32, devs *[2][]int32) {
	m.moveNet(0, refNet, m.next)
	m.moveNet(1, layNet, m.next)
	m.next++
	m.count = append(m.count, 2)
	for _, p := range m.s[0].netAdj[refNet] {
		devs[0] = append(devs[0], p.dev)
	}
	for _, p := range m.s[1].netAdj[layNet] {
		devs[1] = append(devs[1], p.dev)
	}
}

// moveNet reassigns one net's class, maintaining the member counts.
func (m *matcher) moveNet(side int, n, cls int32) {
	sd := m.s[side]
	m.count[sd.netClass[n]]--
	sd.netClass[n] = cls
}

// verifyMap checks that a complete net map really is an isomorphism of
// the reduced netlists: the mapped reference device multiset must
// equal the layout device multiset, and every shared label must map to
// its own layout net.
func (m *matcher) verifyMap(netMap map[int]int) bool {
	ref, lay := m.s[0].r, m.s[1].r
	if len(ref.devs) != len(lay.devs) {
		return false
	}
	counts := map[string]int{}
	for _, d := range lay.devs {
		counts[devKey(d)]++
	}
	var gates []int32
	for _, d := range ref.devs {
		a, b := int32(netMap[int(d.a)]), int32(netMap[int(d.b)])
		if b < a {
			a, b = b, a
		}
		gates = gates[:0]
		for _, g := range d.gates {
			gates = append(gates, int32(netMap[int(g)]))
		}
		slices.Sort(gates)
		key := devKey(rdev{kind: d.kind, gates: gates, a: a, b: b, mult: d.mult})
		counts[key]--
		if counts[key] < 0 {
			return false
		}
	}
	for name, rn := range ref.labelNet {
		ln, ok := lay.labelNet[name]
		if !ok {
			continue
		}
		if netMap[rn] != ln {
			return false
		}
	}
	return true
}
