package lvs

import (
	"fmt"
	"testing"

	"riot/internal/core"
	"riot/internal/filter"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
)

// gridEditor builds an n x n grid of individually placed, abutting
// SRCELL instances under an editor.
func gridEditor(tb testing.TB, n int) *core.Editor {
	tb.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		tb.Fatal(err)
	}
	top := core.NewComposition(fmt.Sprintf("TOP%d", n))
	if err := d.AddCell(top); err != nil {
		tb.Fatal(err)
	}
	e, err := core.NewEditor(d, top)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n*n; i++ {
		x, y := i%n, i/n
		tr := geom.MakeTransform(geom.R0, geom.Pt(x*20*rules.Lambda, y*24*rules.Lambda))
		if _, err := e.CreateInstance("SRCELL", fmt.Sprintf("c%d", i), tr, 1, 1, 0, 0); err != nil {
			tb.Fatal(err)
		}
	}
	return e
}

func mustClean(tb testing.TB, res *Result, err error, what string) {
	tb.Helper()
	if err != nil {
		tb.Fatalf("%s: %v", what, err)
	}
	if !res.Clean {
		tb.Fatalf("%s: not clean: %v", what, res.Mismatches)
	}
	if len(res.NetMap) != res.RefNets || res.RefNets != res.LayNets {
		tb.Fatalf("%s: incomplete match: %d mapped of %d ref / %d lay nets",
			what, len(res.NetMap), res.RefNets, res.LayNets)
	}
}

// TestLibraryCellsClean runs LVS on every shipped library cell: a leaf
// compared against its own extraction must match exactly.
func TestLibraryCellsClean(t *testing.T) {
	cells, err := lib.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		res, err := CheckCell(c)
		mustClean(t, res, err, c.Name)
		if c.Name == "SRCELL" && res.RefDevices == 0 {
			t.Error("SRCELL reduced to no devices")
		}
	}
}

// TestAbuttedPairClean abuts two NAND gates (the quickstart flow) and
// checks the assembly verifies: declared rail connections realized by
// abutment, netlists isomorphic.
func TestAbuttedPairClean(t *testing.T) {
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := e.CreateInstance("NAND", "g1", geom.MakeTransform(geom.R0, geom.Pt(0, 0)), 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e.CreateInstance("NAND", "g2", geom.MakeTransform(geom.R0, geom.Pt(40*rules.Lambda, 5*rules.Lambda)), 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddConnection(g2, "PWRL", g1, "PWRR"); err != nil {
		t.Fatal(err)
	}
	if err := e.AddConnection(g2, "GNDL", g1, "GNDR"); err != nil {
		t.Fatal(err)
	}
	if warns, err := e.Abut(false); err != nil || len(warns) > 0 {
		t.Fatalf("abut: %v %v", warns, err)
	}
	if len(e.Declared) != 2 {
		t.Fatalf("declared records = %d, want 2", len(e.Declared))
	}
	res, err := CheckEditor(e)
	mustClean(t, res, err, "abutted pair")
}

// TestGridClean checks an abutting SRCELL grid: every seam connection
// (rails, data chain, clock columns) is sanctioned structure, so the
// reference matches the layout with no declarations at all.
func TestGridClean(t *testing.T) {
	e := gridEditor(t, 4)
	res, err := CheckEditor(e)
	mustClean(t, res, err, "4x4 grid")
}

// TestReplicatedArrayClean checks the same structure built the
// paper's way: one instance with Nx x Ny replication. Copy seams abut
// exactly like individually placed cells.
func TestReplicatedArrayClean(t *testing.T) {
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	top := core.NewComposition("ARR")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateInstance("SRCELL", "arr", geom.Identity, 4, 3, 0, 0); err != nil {
		t.Fatal(err)
	}
	res, err := CheckEditor(e)
	mustClean(t, res, err, "4x3 array")
}

// TestFilterVariantsClean runs LVS over both figure-9 logic assemblies
// and the figure-10 chip — routed channels, stretched cells, pads —
// with no editing session (structure-only reference).
func TestFilterVariantsClean(t *testing.T) {
	for _, variant := range []filter.Variant{filter.Routed, filter.Stretched} {
		d, logic, _, err := filter.BuildLogic(variant)
		if err != nil {
			t.Fatal(err)
		}
		_ = d
		res, err := CheckCell(logic)
		mustClean(t, res, err, "logic/"+variant.String())
	}
	for _, variant := range []filter.Variant{filter.Routed, filter.Stretched} {
		_, chip, _, err := filter.BuildChip(variant)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CheckCell(chip)
		mustClean(t, res, err, "chip/"+variant.String())
	}
}
