package lvs

import (
	"slices"

	"riot/internal/sticks"
)

// Series/parallel device reduction. Transistor-level netlists carry
// arbitrary orderings a comparison must not see: the two transistors
// of a NAND pulldown stack appear in layout order, parallel drive legs
// in placement order, and source/drain are interchangeable. Reducing
// both sides first makes those choices invisible:
//
//   - parallel devices (same kind, same gate signature, same channel
//     net pair) collapse into one device with a multiplicity;
//   - series devices (two mult-1 devices of one kind whose shared
//     channel net carries nothing else — no third pin, no gate, no
//     label) collapse into one compound device whose gate signature is
//     the multiset union, erasing the stack order; the interior net
//     disappears from the reduced space.
//
// Reduction runs to a fixpoint (a collapse can expose another) and is
// a pure function of the abstract graph: renaming nets or reordering
// devices cannot change the reduced structure. Floating nets — no
// device pin, no label — are dropped here too, on both sides alike, so
// electrically meaningless material (glass openings, decorations)
// never reaches the matcher.

// rdev is a reduced device: a kind, a sorted gate-net multiset, an
// unordered channel pair and a parallel multiplicity.
type rdev struct {
	kind  sticks.DeviceKind
	gates []int32 // sorted
	a, b  int32   // a <= b
	mult  int32
}

// rnetlist is the reduced form of one Netlist side.
type rnetlist struct {
	nets       int    // original net id space (ids index the slices below)
	alive      []bool // net exists in the reduced netlist
	devs       []rdev
	labeled    []bool         // net carries at least one label
	labelNet   map[string]int // label -> net (shared with the input netlist)
	aliveCount int

	labelsMemo [][]string // lazy per-net label lists, report paths only
}

// labelsOf returns the net's labels (unsorted; report paths sort what
// they emit). The per-net lists are derived lazily — building them
// eagerly would put an allocation per label on the clean path.
func (r *rnetlist) labelsOf(n int32) []string {
	if r.labelsMemo == nil {
		r.labelsMemo = make([][]string, r.nets)
		for name, net := range r.labelNet {
			r.labelsMemo[net] = append(r.labelsMemo[net], name)
		}
	}
	return r.labelsMemo[n]
}

// reduce builds the reduced netlist of one side.
func reduce(n *Netlist) *rnetlist {
	r := &rnetlist{
		nets:     n.NetCount,
		alive:    make([]bool, n.NetCount),
		labeled:  make([]bool, n.NetCount),
		labelNet: n.Labels, // shared read-only with the input netlist
	}
	for _, net := range n.Labels {
		r.labeled[net] = true
	}
	r.devs = make([]rdev, 0, len(n.Devices))
	for _, d := range n.Devices {
		a, b := int32(d.A), int32(d.B)
		if b < a {
			a, b = b, a
		}
		r.devs = append(r.devs, rdev{kind: d.Kind, gates: []int32{int32(d.Gate)}, a: a, b: b, mult: 1})
	}

	// parallel grouping hashes every device; run it only when a series
	// collapse or a prune could have created new parallel candidates
	r.mergeParallel()
	for {
		collapsed := r.mergeSeries()
		pruned := r.pruneDangling()
		if !collapsed && !pruned {
			break
		}
		r.mergeParallel()
	}

	// a net is alive if anything still references it
	for _, d := range r.devs {
		r.alive[d.a] = true
		r.alive[d.b] = true
		for _, g := range d.gates {
			r.alive[g] = true
		}
	}
	for net, lab := range r.labeled {
		if lab {
			r.alive[net] = true
		}
	}
	for _, a := range r.alive {
		if a {
			r.aliveCount++
		}
	}
	return r
}

// devKey canonically encodes a device for the parallel grouping.
func devKey(d rdev) string {
	buf := make([]byte, 0, 16+8*len(d.gates))
	put := func(v int32) {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	buf = append(buf, byte(d.kind))
	put(d.a)
	put(d.b)
	for _, g := range d.gates {
		put(g)
	}
	return string(buf)
}

// mergeParallel collapses identical devices into multiplicities,
// keeping first-occurrence order. Reports whether anything merged.
func (r *rnetlist) mergeParallel() bool {
	seen := map[string]int{}
	out := r.devs[:0]
	merged := false
	for _, d := range r.devs {
		key := devKey(d)
		if at, ok := seen[key]; ok {
			out[at].mult += d.mult
			merged = true
			continue
		}
		seen[key] = len(out)
		out = append(out, d)
	}
	r.devs = out
	return merged
}

// mergeSeries collapses one round of series stacks: interior nets with
// exactly two channel pins and nothing else fold their two devices
// into one. Reports whether anything collapsed.
func (r *rnetlist) mergeSeries() bool {
	// channel-pin and gate-pin incidence per net
	chanPins := make([][]int, r.nets)
	gatePinned := make([]bool, r.nets)
	for i, d := range r.devs {
		chanPins[d.a] = append(chanPins[d.a], i)
		if d.b != d.a {
			chanPins[d.b] = append(chanPins[d.b], i)
		} else {
			chanPins[d.a] = append(chanPins[d.a], i)
		}
		for _, g := range d.gates {
			gatePinned[g] = true
		}
	}
	dead := make([]bool, len(r.devs))
	collapsed := false
	for net := 0; net < r.nets; net++ {
		pins := chanPins[net]
		if len(pins) != 2 || pins[0] == pins[1] || gatePinned[net] || r.labeled[net] {
			continue
		}
		i, j := pins[0], pins[1]
		if dead[i] || dead[j] {
			continue // already consumed this round; the next round retries
		}
		di, dj := r.devs[i], r.devs[j]
		if di.kind != dj.kind || di.mult != 1 || dj.mult != 1 {
			continue
		}
		// the compound device spans the two outer ends
		a := otherEnd(di, int32(net))
		b := otherEnd(dj, int32(net))
		if a < 0 || b < 0 {
			continue
		}
		if b < a {
			a, b = b, a
		}
		gates := make([]int32, 0, len(di.gates)+len(dj.gates))
		gates = append(gates, di.gates...)
		gates = append(gates, dj.gates...)
		slices.Sort(gates)
		r.devs[i] = rdev{kind: di.kind, gates: gates, a: a, b: b, mult: 1}
		dead[j] = true
		collapsed = true
	}
	if !collapsed {
		return false
	}
	out := r.devs[:0]
	for i, d := range r.devs {
		if !dead[i] {
			out = append(out, d)
		}
	}
	r.devs = out
	return true
}

// pruneDangling removes devices with a dead channel end: a channel net
// carrying exactly that one pin and no label has no current path, so
// the device conducts nothing (an unconnected pass transistor's
// source/drain stubs, half-wired devices mid-edit). Pruning is a pure
// function of the graph — both sides prune identically — and a device
// dangling on one side only still mismatches, because its live twin
// survives on the other. Without this pass, every such stub is a
// 2-element automorphic orbit the canonical matcher would have to
// individualize one by one.
func (r *rnetlist) pruneDangling() bool {
	pins := make([]int32, r.nets)
	for _, d := range r.devs {
		pins[d.a]++
		pins[d.b]++
		for _, g := range d.gates {
			pins[g]++
		}
	}
	dead := func(n int32) bool {
		return pins[n] == 1 && !r.labeled[n]
	}
	out := r.devs[:0]
	pruned := false
	for _, d := range r.devs {
		if (dead(d.a) && d.a != d.b) || (dead(d.b) && d.a != d.b) {
			pruned = true
			continue
		}
		out = append(out, d)
	}
	r.devs = out
	return pruned
}

// otherEnd returns the channel end of d that is not net, or -1 when
// both ends are net (a self-loop cannot series-collapse).
func otherEnd(d rdev, net int32) int32 {
	switch {
	case d.a == net && d.b != net:
		return d.b
	case d.b == net && d.a != net:
		return d.a
	}
	return -1
}
