package lvs

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"riot/internal/core"
	"riot/internal/geom"
	"riot/internal/lib"
	"riot/internal/rules"
	"riot/internal/verify"
)

const lam = rules.Lambda

// nandQuad places two vertical NAND pairs whose output caps touch
// across a 2-lambda box gap — material contact the abutment contract
// does NOT sanction (the boxes are apart), so the layout joins nets
// the structure never declared. far separates the pairs.
func nandQuad(t *testing.T) (*core.Editor, [4]*core.Instance) {
	t.Helper()
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	top := core.NewComposition("QUAD")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	var ins [4]*core.Instance
	for p := 0; p < 2; p++ {
		x := p * 200 * lam
		lo, err := e.CreateInstance("NAND", fmt.Sprintf("n%d", 2*p), geom.MakeTransform(geom.R0, geom.Pt(x, 0)), 1, 1, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := e.CreateInstance("NAND", fmt.Sprintf("n%d", 2*p+1), geom.MakeTransform(geom.R0, geom.Pt(x, 22*lam)), 1, 1, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		// flip in place so the output faces down across the gap
		e.OrientInstance(hi, geom.MXR180)
		ins[2*p], ins[2*p+1] = lo, hi
	}
	return e, ins
}

// TestUnsanctionedContactIsShort: the touching output caps join two
// declared-distinct nets — a short, reported with both labels.
func TestUnsanctionedContactIsShort(t *testing.T) {
	e, _ := nandQuad(t)
	res, err := CheckEditor(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Fatal("unsanctioned contact verified clean")
	}
	if !hasKind(res, KindShort) {
		t.Fatalf("unsanctioned contact reported as %v", res.Mismatches)
	}
	mm := res.Mismatches[0]
	if mm.Kind != KindShort || len(mm.Labels) == 0 {
		t.Fatalf("first mismatch = %+v, want a labeled short", mm)
	}
}

// TestSwappedConnectionMismatch injects the acceptance scenario: the
// declared pairing joins the quads crosswise while the layout joins
// them straight — a 2x2 crossed anchor cluster, reported as swapped.
func TestSwappedConnectionMismatch(t *testing.T) {
	e, ins := nandQuad(t)
	// declared intent: n0.OUT <-> n3.OUT and n2.OUT <-> n1.OUT
	// (crossed); the layout realizes n0-n1 and n2-n3.
	if err := e.Declare(ins[0], "OUT", ins[3], "OUT"); err != nil {
		t.Fatal(err)
	}
	if err := e.Declare(ins[2], "OUT", ins[1], "OUT"); err != nil {
		t.Fatal(err)
	}
	res, err := CheckEditor(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Fatal("swapped connections verified clean")
	}
	if !hasKind(res, KindSwapped) {
		t.Fatalf("swapped connections reported as %v", res.Mismatches)
	}
	for _, mm := range res.Mismatches {
		if mm.Kind == KindSwapped {
			if len(mm.Labels) != 4 {
				t.Fatalf("swapped labels = %v, want the four crossed connectors", mm.Labels)
			}
			return
		}
	}
}

// TestDeletedRouteIsOpen is the acceptance deleted-wire edit: a routed
// connection's route cell is deleted; the retained Connection record
// still declares the net, so LVS reports a structured open naming the
// connectors.
func TestDeletedRouteIsOpen(t *testing.T) {
	d := core.NewDesign()
	if err := lib.Install(d); err != nil {
		t.Fatal(err)
	}
	top := core.NewComposition("TOP")
	if err := d.AddCell(top); err != nil {
		t.Fatal(err)
	}
	e, err := core.NewEditor(d, top)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := e.CreateInstance("SRCELL", "sr", geom.MakeTransform(geom.R0, geom.Pt(0, 40*lam)), 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := e.CreateInstance("NAND", "nd", geom.MakeTransform(geom.MXR180, geom.Pt(0, 0)), 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddConnection(nd, "A", sr, "TAP"); err != nil {
		t.Fatal(err)
	}
	route, err := e.RouteConnect(core.RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckEditor(e)
	mustClean(t, res, err, "routed pair")

	// the deleted-wire edit
	if err := e.DeleteInstance(route.RouteInst); err != nil {
		t.Fatal(err)
	}
	if len(e.Declared) != 1 {
		t.Fatalf("declared records = %d after route deletion, want the original link kept", len(e.Declared))
	}
	res, err = CheckEditor(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Fatal("deleted route verified clean")
	}
	if !hasKind(res, KindOpen) {
		t.Fatalf("deleted route reported as %v", res.Mismatches)
	}
}

// TestIncrementalMatchesScratchUnderEdits is the end-to-end
// differential: random editor operations on an abutting grid, the
// generation-keyed incremental path after each, compared against the
// cache-free CheckEditor. Verdicts, mismatches and net maps must be
// identical.
func TestIncrementalMatchesScratchUnderEdits(t *testing.T) {
	e := gridEditor(t, 4)
	// an isolated island far from the grid: declarations against it tie
	// genuinely separate nets, so the Declare arm below really changes
	// verdicts (inside the connected grid every poly connector is one
	// net and a declaration would be a no-op union)
	island, err := e.CreateInstance("SRCELL", "island",
		geom.MakeTransform(geom.R0, geom.Pt(500*lam, 500*lam)), 1, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	v := &verify.Verifier{}
	inc := &Incremental{}
	rng := rand.New(rand.NewSource(42))

	check := func(step int) {
		t.Helper()
		got, err := inc.Check(e, v)
		if err != nil {
			t.Fatalf("step %d: incremental: %v", step, err)
		}
		want, err := CheckEditor(e)
		if err != nil {
			t.Fatalf("step %d: scratch: %v", step, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: incremental verdict diverged:\ninc:     %+v\nscratch: %+v", step, got, want)
		}
	}

	check(0)
	for step := 1; step <= 24; step++ {
		ins := e.Cell.Instances
		in := ins[rng.Intn(len(ins))]
		switch rng.Intn(4) {
		case 0: // small jog — rails detach or shift
			e.MoveInstance(in, geom.Pt(lam, 0))
		case 1:
			e.MoveInstance(in, geom.Pt(0, -lam))
		case 2: // full pitch — reattach somewhere else
			e.MoveInstance(in, geom.Pt(20*lam, 0))
		case 3: // declare a connection the layout does not realize —
			// the verdict must flip to an open on both paths
			other := ins[rng.Intn(len(ins))]
			if other != island {
				_ = e.Declare(island, "OUT", other, "IN")
			}
		}
		check(step)
	}

	// the cached-verdict fast path: same generation, same pointer back
	r1, err := inc.Check(e, v)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := inc.Check(e, v)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("unchanged generation did not return the cached verdict")
	}
}
