package lvs

import (
	"strings"
	"testing"

	"riot/internal/geom"
)

// TestReferenceSingleSessionGuard pins the ownership contract: a
// Reference serves one session; a second concurrent entry is refused
// loudly instead of corrupting the pointer-keyed memos. Cross-session
// sharing goes through the content-addressed store.
func TestReferenceSingleSessionGuard(t *testing.T) {
	e := gridEditor(t, 2)
	var rf Reference
	if _, _, err := rf.NetlistOccs(e.Cell, nil); err != nil {
		t.Fatal(err)
	}
	rf.busy = 1
	_, _, err := rf.NetlistOccs(e.Cell, nil)
	if err == nil || !strings.Contains(err.Error(), "concurrently") {
		t.Fatalf("concurrent entry not refused: %v", err)
	}
	rf.busy = 0
	if _, _, err := rf.NetlistOccs(e.Cell, nil); err != nil {
		t.Fatalf("reference did not recover after the guard cleared: %v", err)
	}
}

// TestReferencePruneStale drives a Reference over many snapshot
// generations of one editing session and checks the memo stays bounded:
// superseded clones (each frozen generation is a fresh *Cell) are
// pruned once the memo bloats past the reachable set.
func TestReferencePruneStale(t *testing.T) {
	e := gridEditor(t, 2) // 4 instances: prune threshold 2*4+64 = 72
	var rf Reference
	for i := 0; i < 160; i++ {
		e.MoveInstance(e.Cell.Instances[0], geom.Pt(0, 0)) // content no-op, new generation
		snap := e.Snapshot()
		if _, _, err := rf.NetlistOccs(snap.Cell, snap.Declared); err != nil {
			t.Fatal(err)
		}
	}
	// reachable set: the current clone + 4 shared leaf cells (+ a few
	// entries the threshold tolerates before the next prune)
	if len(rf.memo) > 2*len(e.Cell.Instances)+64 {
		t.Fatalf("memo grew unboundedly across generations: %d entries", len(rf.memo))
	}
	if len(rf.conns) > 3*len(e.Cell.Instances)+64 {
		t.Fatalf("conns memo grew unboundedly: %d entries", len(rf.conns))
	}
	// and the derivation still answers correctly after pruning
	snap := e.Snapshot()
	ref, _, err := rf.NetlistOccs(snap.Cell, snap.Declared)
	if err != nil {
		t.Fatal(err)
	}
	if ref == nil {
		t.Fatal("nil reference after prune")
	}
}
