package lvs

import (
	"strconv"

	"riot/internal/castore"
	"riot/internal/extract"
	"riot/internal/flatten"
)

// Hierarchical matching certificates. Riot's whole premise is
// composition of pre-designed cells — the same leaf repeated hundreds
// of times in arrays and padframes — yet a flat comparison re-matches
// every copy's interior from scratch. A certificate captures the
// one-time verdict for one distinct sub-cell (keyed by the same
// placement signature the reference derivation memoizes extractions
// on): its reference and extracted netlists are matched ONCE, and the
// verified net-map witness is recorded with the reduced-interior
// accounting. At the top level every occurrence of a certified cell is
// then checked cheaply — its extracted devices must align one-to-one
// with the cell's standalone extraction (flatten emits both in the
// same walk order), and its interior nets must be untouched by
// anything outside the occurrence — and treated as pre-collapsed:
//
//   - the occurrence's interior is covered by the certificate and
//     never enters refinement;
//   - its boundary nets carry a FORCED correspondence (the device
//     alignment map phi pins each reference boundary net to the flat
//     layout net its material actually landed on), checked directly
//     as a global bijection instead of being re-derived by partition
//     refinement;
//   - connector labels whose nets the bijection covers are verified by
//     one lookup each and consumed;
//   - only what remains — the devices and labels of occurrences that
//     could NOT be certified, with the bijection's pairs seeding their
//     frontier as anchors — goes through the generic reduce/refine/
//     individualize machinery.
//
// Matching cost therefore scales with O(distinct cells + boundary +
// un-certified residual) instead of O(flat devices): a cold 64x64
// array matches its one leaf once and settles the 4096 copies by
// alignment, and an incremental edit re-refines only the de-certified
// region around the dirty rectangles — the warm start the persistent
// store and reference memo provide across editor generations.
//
// Soundness: an occurrence is only certified when its interior is
// provably isolated — every flat net claimed interior carries exactly
// the device pins the standalone cell predicts, no labels, and no
// claim from any other occurrence — so unsanctioned material poking
// deep into a cell (the short LVS exists to catch) de-certifies the
// occurrence and leaves it in the residual. A certified comparison
// that comes back anything but clean is rerun flat, so diagnostics
// always name leaf-level nets and verdicts are identical to
// certificate-free runs by construction; a clean certified verdict is
// witnessed by the composed net map (bijection + certificate interiors
// + residual matching), which the NetMap reports in leaf-level terms.

// certificate is one distinct sub-cell's recorded match.
type certificate struct {
	sig uint64
	ok  bool // the one-time reference/extracted match verified clean

	nets     int // the cell's standalone net space
	devs     []Device
	boundary []int32 // boundary-visible local nets, ascending: the pin order
	interior []bool  // per local net: carries pins but is not boundary-visible
	pinCount []int32 // device pins per local net, the isolation yardstick

	// aliveInterior lists the non-boundary local nets that survive the
	// cell's series/parallel reduction: the certificate's contribution
	// to a clean top-level net map (leaf-level ids, substituted back
	// per occurrence).
	aliveInterior []int32
	// redDevices counts the cell's reduced devices, the certificate's
	// contribution to the per-side device accounting.
	redDevices int
	// witness is the verified net map of the one-time match (reduced
	// net spaces), kept as the certificate's evidence.
	witness map[int]int
}

// CertStats is one comparison's certificate accounting; it is
// deterministic per design (independent of store warmth), so cached
// and from-scratch runs produce identical Results.
type CertStats struct {
	// Occurrences counts the design's leaf occurrences; Certified how
	// many compared under a certificate; Cells the distinct certified
	// cell signatures among them.
	Occurrences int
	Certified   int
	Cells       int
	// Fallback reports that the certified comparison found a mismatch
	// and the verdict (and every diagnostic) came from the flat rerun.
	Fallback bool
}

// CertStoreStats is the cumulative store accounting (LVS -stats).
type CertStoreStats struct {
	Matched  int // one-time sub-cell matches performed
	Hits     int // comparisons served by an already-recorded certificate
	DiskHits int // certificates loaded from the persistent store
}

// CertStore records sub-cell certificates across comparisons. The zero
// value is ready to use. A store is coupled to the Reference whose
// signatures key it: use one pair per verification session (as
// Incremental does).
type CertStore struct {
	certs map[uint64]*certificate
	stats CertStoreStats

	// optional persistent second level (AttachDisk): certificates
	// missing in memory are looked up by content signature before the
	// one-time match is performed
	disk   castore.Blob
	signer *castore.Signer
}

// Stats reports the store's cumulative accounting.
func (cs *CertStore) Stats() CertStoreStats { return cs.stats }

// get returns the cell's certificate, matching its reference and
// extracted netlists once on first sight of the signature.
func (cs *CertStore) get(rf *Reference, oc refOcc) *certificate {
	if ct, ok := cs.certs[oc.sig]; ok {
		cs.stats.Hits++
		return ct
	}
	if ct := cs.diskLoad(oc); ct != nil {
		// the persistent store already holds the cell's one-time match
		// (from a previous process): adopt it, skipping the match
		cs.stats.DiskHits++
		if cs.certs == nil {
			cs.certs = map[uint64]*certificate{}
		}
		cs.certs[oc.sig] = ct
		return ct
	}
	cs.stats.Matched++
	ct := &certificate{sig: oc.sig}
	e := rf.entry(oc.cell, seamReach)
	if e.err == nil {
		ct.nets, ct.devs = e.nets, e.devices
		// boundary-visibility at the BASE contract reach, filtered from
		// the entry's (possibly deeper) retained material: an entry's
		// reach only ever grows with the seams it has seen, and the
		// certificate must not depend on that history — cached and
		// from-scratch runs must certify identically. Deep-overlap
		// occurrences whose deeper material really participates in a
		// seam de-certify through the isolation check instead.
		isB := make([]bool, e.nets)
		for _, p := range e.ports {
			if p.net >= 0 {
				isB[p.net] = true
			}
		}
		inner := oc.cell.BBox().Inset(seamReach)
		for _, bf := range e.boundary {
			if bf.net >= 0 && !inner.ContainsRect(bf.r) {
				isB[bf.net] = true
			}
		}
		ct.pinCount = make([]int32, e.nets)
		for _, d := range ct.devs {
			ct.pinCount[d.Gate]++
			ct.pinCount[d.A]++
			ct.pinCount[d.B]++
		}
		ct.interior = make([]bool, e.nets)
		for n := 0; n < e.nets; n++ {
			if isB[n] {
				ct.boundary = append(ct.boundary, int32(n))
			} else if ct.pinCount[n] > 0 {
				ct.interior[n] = true
			}
		}
		// the one-time match: the cell's declared netlist against its
		// own standalone extraction (for a leaf the derivation IS the
		// extraction, so this verifies self-consistency and records the
		// witness; a cell that cannot even match itself is never
		// certified and its occurrences stay in the residual)
		side := &Netlist{NetCount: e.nets, Devices: e.devices, Labels: e.labels}
		if res := Compare(side, side); res.Clean {
			ct.ok = len(ct.boundary) > 0 && len(ct.devs) > 0
			ct.witness = res.NetMap
		}
		// reduced-interior accounting for clean top-level net maps
		rr := reduce(side)
		ct.redDevices = len(rr.devs)
		for n := 0; n < e.nets; n++ {
			if rr.alive[n] && !isB[n] {
				ct.aliveInterior = append(ct.aliveInterior, int32(n))
			}
		}
	}
	if cs.certs == nil {
		cs.certs = map[uint64]*certificate{}
	}
	cs.certs[oc.sig] = ct
	if e.err == nil {
		cs.diskStore(oc.cell, ct)
	}
	return ct
}

// anchorLabel names the synthetic residual anchor of one bijection
// pair, keyed by the reference net id (deterministic per design). The
// NUL prefix keeps it out of any real connector namespace.
func anchorLabel(refNet int32) string {
	return "\x00a" + strconv.Itoa(int(refNet))
}

// notClean is the sentinel result compareCertified returns when the
// certified comparison itself found the sides inconsistent: the caller
// reruns the flat comparison for diagnostics.
var notClean = &Result{}

// compareCertified runs the certificate-backed comparison. It returns
// nil when the two sides' occurrence structure cannot be aligned or
// nothing certifies (the caller compares flat), the notClean sentinel
// or the residual's own non-clean result when a certified check fails
// (the caller falls back to flat for diagnostics), or the composed
// clean result.
func (cs *CertStore) compareCertified(rf *Reference, occs []refOcc, ref, lay *Netlist, ckt *extract.Circuit, fr *flatten.Result) (*Result, CertStats) {
	var st CertStats
	st.Occurrences = len(fr.SrcCells)
	if len(occs) != len(fr.SrcCells) {
		return nil, st
	}
	for i, oc := range occs {
		if oc.cell != fr.SrcCells[i] {
			return nil, st
		}
	}

	// layout device spans per occurrence: transistors are emitted
	// one-to-one, in order, from flatten's device list
	if len(ckt.Transistors) != len(fr.Devices) {
		return nil, st
	}
	layLo := make([]int32, len(occs)+1)
	{
		d := 0
		for o := range occs {
			layLo[o] = int32(d)
			for d < len(fr.Devices) && fr.Devices[d].Src == o {
				d++
			}
		}
		layLo[len(occs)] = int32(d)
		if d != len(fr.Devices) {
			return nil, st // device Srcs not in walk order
		}
	}

	// certificates and reference spans; both sides must agree span for
	// span with the standalone cells
	certs := make([]*certificate, len(occs))
	refLo := make([]int32, len(occs)+1)
	total := 0
	for o, oc := range occs {
		ct := cs.get(rf, oc)
		certs[o] = ct
		refLo[o] = int32(total)
		total += len(ct.devs)
		if int(layLo[o+1]-layLo[o]) != len(ct.devs) || len(oc.nets) != ct.nets {
			return nil, st
		}
	}
	refLo[len(occs)] = int32(total)
	if total != len(ref.Devices) {
		return nil, st
	}

	// per-occurrence device alignment: phi maps the cell's standalone
	// nets onto flat layout nets through the pin lists, and must be
	// consistent (one flat net per local net) and injective (distinct
	// local nets stay distinct — a deep unsanctioned short inside the
	// occurrence breaks exactly this)
	phis := make([][]int32, len(occs))
	cand := make([]bool, len(occs))
	inv := map[int32]int32{}
	for o := range occs {
		ct := certs[o]
		if !ct.ok {
			continue
		}
		phi := make([]int32, ct.nets)
		for i := range phi {
			phi[i] = -1
		}
		clear(inv)
		good := true
		bind := func(local int, flat int) bool {
			switch f := int32(flat); {
			case phi[local] < 0:
				if prev, dup := inv[f]; dup && prev != int32(local) {
					return false // two local nets on one flat net
				}
				phi[local] = f
				inv[f] = int32(local)
			case phi[local] != int32(flat):
				return false // one local net on two flat nets
			}
			return true
		}
		for j := 0; j < len(ct.devs) && good; j++ {
			std, tr := ct.devs[j], ckt.Transistors[int(layLo[o])+j]
			good = std.Kind == tr.Kind &&
				bind(std.Gate, tr.Gate) && bind(std.A, tr.A) && bind(std.B, tr.B)
		}
		if !good {
			continue
		}
		// every boundary pin must have landed (a pin-less boundary net
		// has no device evidence to align on; such cells stay flat)
		for _, b := range ct.boundary {
			if phi[b] < 0 {
				good = false
				break
			}
		}
		if good {
			phis[o], cand[o] = phi, true
		}
	}

	// isolation: a flat net claimed interior must carry exactly the
	// pins its occurrence predicts (so nothing outside touches it), no
	// label, and no second claimant
	flatPins := make([]int32, ckt.NetCount)
	for _, tr := range ckt.Transistors {
		flatPins[tr.Gate]++
		flatPins[tr.A]++
		flatPins[tr.B]++
	}
	flatLabeled := make([]bool, ckt.NetCount)
	for _, n := range ckt.NetOf {
		flatLabeled[n] = true
	}
	claimant := make([]int32, ckt.NetCount)
	for i := range claimant {
		claimant[i] = -1
	}
	for o := range occs {
		if !cand[o] {
			continue
		}
		ct, phi := certs[o], phis[o]
		for n := 0; n < ct.nets; n++ {
			if !ct.interior[n] {
				continue
			}
			f := phi[n]
			if flatLabeled[f] || flatPins[f] != ct.pinCount[n] || claimant[f] >= 0 {
				cand[o] = false
				if claimant[f] >= 0 {
					cand[claimant[f]] = false // both claimants stay flat
				}
				break
			}
			claimant[f] = int32(o)
		}
	}
	// release claims of occurrences de-certified after claiming, then
	// reject claims that collide with a surviving occurrence's boundary
	// image (its devices would reference a net the claimant abandons)
	for f, o := range claimant {
		if o >= 0 && !cand[o] {
			claimant[f] = -1
		}
	}
	for o := range occs {
		if !cand[o] {
			continue
		}
		for _, b := range certs[o].boundary {
			if cl := claimant[phis[o][b]]; cl >= 0 && cl != int32(o) {
				cand[o] = false
				cand[cl] = false
			}
		}
	}
	for f, o := range claimant {
		if o >= 0 && !cand[o] {
			claimant[f] = -1
		}
	}

	seenCell := map[uint64]bool{}
	for o := range occs {
		if cand[o] {
			st.Certified++
			if !seenCell[certs[o].sig] {
				seenCell[certs[o].sig] = true
				st.Cells++
			}
		}
	}
	if st.Certified == 0 {
		return nil, st
	}

	// the forced boundary bijection: every certified occurrence pins
	// its reference boundary nets to the flat nets its material
	// actually landed on; the relation must be one-to-one both ways
	// (two reference nets collapsing onto one layout net is a short,
	// the reverse an open — either way the flat rerun diagnoses it)
	bij := make([]int32, ref.NetCount)
	invB := make([]int32, ckt.NetCount)
	for i := range bij {
		bij[i] = -1
	}
	for i := range invB {
		invB[i] = -1
	}
	for o := range occs {
		if !cand[o] {
			continue
		}
		refNets, phi := occs[o].nets, phis[o]
		for _, b := range certs[o].boundary {
			r, l := refNets[b], phi[b]
			if (bij[r] >= 0 && bij[r] != l) || (invB[l] >= 0 && invB[l] != r) {
				return notClean, st
			}
			bij[r], invB[l] = l, r
		}
	}

	// labels: one lookup each against the bijection; labels on
	// un-covered nets pass through to the residual (keeping their
	// aliveness semantics). Anything irregular on a covered net — a
	// crossed pairing, or a label one side resolved and the other did
	// not (flat comparison treats one-sided labels as aliveness marks,
	// which can change that side's reduction) — hands the verdict to
	// the flat rerun rather than risk a clean the flat path would not
	// give.
	refLabels := map[string]int{}
	layLabels := map[string]int{}
	for name, r := range ref.Labels {
		l, shared := lay.Labels[name]
		if !shared {
			if bij[r] >= 0 {
				return notClean, st // one-sided label on a covered net
			}
			refLabels[name] = r
			continue
		}
		switch {
		case bij[r] >= 0 && invB[l] >= 0:
			if bij[r] != int32(l) {
				return notClean, st
			}
		case bij[r] < 0 && invB[l] < 0:
			refLabels[name] = r
			layLabels[name] = l
		default:
			return notClean, st // covered on one side only: crossed wiring
		}
	}
	for name, l := range lay.Labels {
		if _, shared := ref.Labels[name]; !shared {
			if invB[l] >= 0 {
				return notClean, st // one-sided label on a covered net
			}
			layLabels[name] = l
		}
	}

	// the residual: devices and labels of un-certified occurrences,
	// with anchor labels on every bijection net the residual touches
	// (refinement warm-starts from them and the final isomorphism
	// verification enforces them)
	refR := &Netlist{NetCount: ref.NetCount, Labels: refLabels}
	layR := &Netlist{NetCount: ckt.NetCount, Labels: layLabels}
	for o := range occs {
		if cand[o] {
			continue
		}
		refR.Devices = append(refR.Devices, ref.Devices[refLo[o]:refLo[o+1]]...)
		for j := layLo[o]; j < layLo[o+1]; j++ {
			tr := ckt.Transistors[j]
			layR.Devices = append(layR.Devices, Device{Kind: tr.Kind, Gate: tr.Gate, A: tr.A, B: tr.B})
		}
	}
	anchored := map[int32]bool{}
	anchor := func(r int32) {
		if !anchored[r] {
			anchored[r] = true
			lbl := anchorLabel(r)
			refR.Labels[lbl] = int(r)
			layR.Labels[lbl] = int(bij[r])
		}
	}
	for _, d := range refR.Devices {
		for _, n := range [3]int{d.Gate, d.A, d.B} {
			if bij[n] >= 0 {
				anchor(int32(n))
			}
		}
	}
	for _, d := range layR.Devices {
		for _, n := range [3]int{d.Gate, d.A, d.B} {
			if r := invB[n]; r >= 0 {
				anchor(r)
			}
		}
	}
	for _, r := range refLabels {
		if bij[r] >= 0 {
			anchor(int32(r))
		}
	}
	for _, l := range layLabels {
		if r := invB[l]; r >= 0 {
			anchor(r)
		}
	}

	res := Compare(refR, layR)
	if !res.Clean {
		return res, st
	}

	// compose the witness: residual matching, then the bijection pairs
	// and every certified occurrence's reduced interior (the
	// certificate substituted back, so the map names leaf-level nets)
	netMap := res.NetMap
	refNetsN, layNetsN := res.RefNets, res.LayNets
	for r, l := range bij {
		if l < 0 {
			continue
		}
		if _, seen := netMap[r]; !seen {
			netMap[r] = int(l)
			refNetsN++
			layNetsN++
		}
	}
	refDevs, layDevs := res.RefDevices, res.LayDevices
	for o := range occs {
		if !cand[o] {
			continue
		}
		ct, refNets, phi := certs[o], occs[o].nets, phis[o]
		for _, n := range ct.aliveInterior {
			netMap[int(refNets[n])] = int(phi[n])
			refNetsN++
			layNetsN++
		}
		refDevs += ct.redDevices
		layDevs += ct.redDevices
	}
	return &Result{
		Clean:   true,
		RefNets: refNetsN, LayNets: layNetsN,
		RefDevices: refDevs, LayDevices: layDevs,
		NetMap: netMap,
	}, st
}

// compareHier is the certificate-backed comparison entry point: any
// outcome other than clean reruns the flat comparison so diagnostics
// name leaf-level nets and verdicts are identical to certificate-free
// runs.
func compareHier(rf *Reference, cs *CertStore, occs []refOcc, ref *Netlist, ckt *extract.Circuit, fr *flatten.Result) *Result {
	lay := FromCircuit(ckt)
	if fr == nil {
		return Compare(ref, lay)
	}
	res, st := cs.compareCertified(rf, occs, ref, lay, ckt, fr)
	if res == nil {
		res = Compare(ref, lay)
		res.Cert = st
		return res
	}
	if !res.Clean {
		st.Fallback = true
		res = Compare(ref, lay)
	}
	res.Cert = st
	return res
}
