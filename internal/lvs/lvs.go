// Package lvs is the layout-versus-schematic leg of the verification
// triad: it proves that the transistor netlist extracted from the
// assembled mask geometry (internal/extract) is isomorphic to the
// netlist the design's composition declares, and reports structured,
// stable diagnostics when it is not.
//
// Riot has no schematic entry — the paper's workflow assembles
// pre-designed cells, and "the designer must verify connections with
// extensive checking". What the design does declare is intent: which
// leaf cells were placed where, which connectors the connection
// commands joined, and which seams the abutment contract sanctions.
// The reference netlist is derived from exactly that:
//
//   - every leaf cell's netlist comes from extracting the leaf alone
//     (memoized per cell — a 32x32 array extracts its cell once);
//   - instance netlists stitch together where connectors coincide
//     (abutment and routing place joined connectors on the same point)
//     and where material crosses an abutted seam — occurrences whose
//     placed bounding boxes touch, the same contract the design-rule
//     checker trusts;
//   - the editor's retained Connection records (core.Editor.Declared)
//     union the nets they name whether or not the layout still
//     realizes them, so a connection a later MOVE silently destroyed
//     surfaces as an open instead of vanishing from both sides.
//
// Comparison is hierarchical. Each distinct sub-cell's
// reference/extracted netlist pair is matched once and recorded as a
// certificate (certificate.go); occurrences of certified cells are
// settled by device alignment and a directly-checked boundary
// bijection, and only the un-certified residual enters the generic
// matcher. That matcher is Gemini-style canonical labeling: both
// netlists are series/parallel-reduced (stacked and paralleled
// transistors collapse into compound devices, so device order and
// source/drain orientation never matter), then a partition refinement
// iteratively colors the bipartite net/device graph of both sides in
// one shared color space, seeded with the connector labels the two
// sides share and the certificates' boundary anchors. Classes whose
// member counts differ between the sides are mismatches; equal
// partitions are witnessed by an explicit net-to-net matching produced
// through deterministic individualization. Reports are stable: every
// tie-break follows net numbering, which both derivations produce
// deterministically.
//
// Mismatch diagnostics are structural, not a bare fail: shorts (two
// declared nets merged in the layout), opens (one declared net split),
// swapped connector pairs, and unmatched net/device classes, each with
// the labels and devices involved. A certified comparison that finds
// any inconsistency reruns flat, so diagnostics always come in
// leaf-level terms and verdicts are identical to certificate-free
// runs.
//
// The abutment seam trust reaches as deep into each occurrence as the
// seam's own geometry requires: the base contract reach (seamReach)
// for plainly abutted boxes, the overlap depth for an ABUT OVERLAP —
// derived per seam from the two placed boxes, so deliberate deep
// overlaps verify clean. (Earlier revisions capped the reach at a
// fixed 4 lambda and mis-reported deeper sanctioned contacts as
// shorts.)
package lvs

import (
	"riot/internal/extract"
	"riot/internal/sticks"
)

// Device is one netlist transistor: its kind and the nets on its gate
// and channel ends (A and B are interchangeable, as in MOS).
type Device struct {
	Kind sticks.DeviceKind
	Gate int
	A, B int
}

// Netlist is one side of a comparison: a dense net space, the device
// list, and the connector labels that resolved to nets. Both the
// layout side (FromCircuit) and the reference side
// (Reference.Netlist) produce this form.
type Netlist struct {
	NetCount int
	Devices  []Device
	Labels   map[string]int
}

// FromCircuit adapts an extracted circuit to the comparison form. The
// label map is shared with the circuit, not copied — comparison only
// reads it.
func FromCircuit(c *extract.Circuit) *Netlist {
	n := &Netlist{NetCount: c.NetCount, Labels: c.NetOf}
	n.Devices = make([]Device, len(c.Transistors))
	for i, t := range c.Transistors {
		n.Devices[i] = Device{Kind: t.Kind, Gate: t.Gate, A: t.A, B: t.B}
	}
	return n
}
