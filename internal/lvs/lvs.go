// Package lvs is the layout-versus-schematic leg of the verification
// triad: it proves that the transistor netlist extracted from the
// assembled mask geometry (internal/extract) is isomorphic to the
// netlist the design's composition declares, and reports structured,
// stable diagnostics when it is not.
//
// Riot has no schematic entry — the paper's workflow assembles
// pre-designed cells, and "the designer must verify connections with
// extensive checking". What the design does declare is intent: which
// leaf cells were placed where, which connectors the connection
// commands joined, and which seams the abutment contract sanctions.
// The reference netlist is derived from exactly that:
//
//   - every leaf cell's netlist comes from extracting the leaf alone
//     (memoized per cell — a 32x32 array extracts its cell once);
//   - instance netlists stitch together where connectors coincide
//     (abutment and routing place joined connectors on the same point)
//     and where material crosses an abutted seam — occurrences whose
//     placed bounding boxes touch, the same contract the design-rule
//     checker trusts;
//   - the editor's retained Connection records (core.Editor.Declared)
//     union the nets they name whether or not the layout still
//     realizes them, so a connection a later MOVE silently destroyed
//     surfaces as an open instead of vanishing from both sides.
//
// Comparison is Gemini-style canonical labeling: both netlists are
// series/parallel-reduced (stacked and paralleled transistors collapse
// into compound devices, so device order and source/drain orientation
// never matter), then a partition refinement iteratively colors the
// bipartite net/device graph of both sides in one shared color space,
// seeded with the connector labels the two sides share. Classes whose
// member counts differ between the sides are mismatches; equal
// partitions are witnessed by an explicit net-to-net matching produced
// through deterministic individualization. Reports are stable: every
// tie-break follows net numbering, which both derivations produce
// deterministically.
//
// Mismatch diagnostics are structural, not a bare fail: shorts (two
// declared nets merged in the layout), opens (one declared net split),
// swapped connector pairs, and unmatched net/device classes, each with
// the labels and devices involved.
//
// Known approximation: the abutment seam trust reaches seamReach into
// each occurrence. Overlaps deeper than that (an extreme ABUT OVERLAP)
// connect material the reference cannot see, and are reported as
// shorts — conservative, never silent.
package lvs

import (
	"riot/internal/extract"
	"riot/internal/sticks"
)

// Device is one netlist transistor: its kind and the nets on its gate
// and channel ends (A and B are interchangeable, as in MOS).
type Device struct {
	Kind sticks.DeviceKind
	Gate int
	A, B int
}

// Netlist is one side of a comparison: a dense net space, the device
// list, and the connector labels that resolved to nets. Both the
// layout side (FromCircuit) and the reference side
// (Reference.Netlist) produce this form.
type Netlist struct {
	NetCount int
	Devices  []Device
	Labels   map[string]int
}

// FromCircuit adapts an extracted circuit to the comparison form. The
// label map is shared with the circuit, not copied — comparison only
// reads it.
func FromCircuit(c *extract.Circuit) *Netlist {
	n := &Netlist{NetCount: c.NetCount, Labels: c.NetOf}
	n.Devices = make([]Device, len(c.Transistors))
	for i, t := range c.Transistors {
		n.Devices[i] = Device{Kind: t.Kind, Gate: t.Gate, A: t.A, B: t.B}
	}
	return n
}
