package lvs

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"riot/internal/sticks"
)

// randNetlist builds a random transistor netlist with labeled ports.
func randNetlist(rng *rand.Rand, nets, devs, labels int) *Netlist {
	n := &Netlist{NetCount: nets, Labels: map[string]int{}}
	for i := 0; i < devs; i++ {
		kind := sticks.Enhancement
		if rng.Intn(3) == 0 {
			kind = sticks.Depletion
		}
		n.Devices = append(n.Devices, Device{
			Kind: kind,
			Gate: rng.Intn(nets),
			A:    rng.Intn(nets),
			B:    rng.Intn(nets),
		})
	}
	for i := 0; i < labels; i++ {
		n.Labels[fmt.Sprintf("L%d", i)] = rng.Intn(nets)
	}
	return n
}

// permuted returns an isomorphic copy: net ids renamed by a random
// permutation, devices reordered, source/drain randomly swapped.
func permuted(rng *rand.Rand, n *Netlist) *Netlist {
	perm := rng.Perm(n.NetCount)
	out := &Netlist{NetCount: n.NetCount, Labels: map[string]int{}}
	out.Devices = make([]Device, len(n.Devices))
	for i, at := range rng.Perm(len(n.Devices)) {
		d := n.Devices[at]
		a, b := perm[d.A], perm[d.B]
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		out.Devices[i] = Device{Kind: d.Kind, Gate: perm[d.Gate], A: a, B: b}
	}
	for name, net := range n.Labels {
		out.Labels[name] = perm[net]
	}
	return out
}

// TestIsomorphicPermutationsMatch is the canonical-labeling fuzz:
// renamed nets, reordered devices and swapped source/drain must always
// verify clean, across sizes and seeds.
func TestIsomorphicPermutationsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nets := 4 + rng.Intn(40)
		devs := 2 + rng.Intn(60)
		labels := rng.Intn(nets/2 + 1)
		ref := randNetlist(rng, nets, devs, labels)
		lay := permuted(rng, ref)
		res := Compare(ref, lay)
		if !res.Clean {
			t.Fatalf("trial %d (%d nets, %d devs, %d labels): isomorphic pair mismatched: %v",
				trial, nets, devs, labels, res.Mismatches)
		}
		// the witness must be a real isomorphism on the reduced graphs
		if len(res.NetMap) != res.RefNets {
			t.Fatalf("trial %d: incomplete net map: %d of %d", trial, len(res.NetMap), res.RefNets)
		}
	}
}

// TestCompareDeterministic pins report stability: the same pair
// compares to byte-identical results every time.
func TestCompareDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := randNetlist(rng, 24, 30, 6)
	lay := permuted(rng, ref)
	// inject one perturbation so there are mismatches to compare
	lay.Devices[4].Gate = (lay.Devices[4].Gate + 1) % lay.NetCount
	a := Compare(ref, lay)
	b := Compare(ref, lay)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic result:\n%+v\nvs\n%+v", a, b)
	}
}

// labeled reports whether a net carries at least one label.
func labeled(n *Netlist, net int) bool {
	for _, v := range n.Labels {
		if v == net {
			return true
		}
	}
	return false
}

// hasKind reports whether a result carries a mismatch of the kind.
func hasKind(res *Result, k Kind) bool {
	for _, mm := range res.Mismatches {
		if mm.Kind == k {
			return true
		}
	}
	return false
}

// TestPerturbationsMismatch applies single-device and single-net
// perturbations to an isomorphic copy and checks each is caught with
// the right structured kind.
func TestPerturbationsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rewires, rewiresCaught := 0, 0
	for trial := 0; trial < 40; trial++ {
		nets := 8 + rng.Intn(24)
		devs := 6 + rng.Intn(30)
		ref := randNetlist(rng, nets, devs, 6)
		lay := permuted(rng, ref)

		switch trial % 4 {
		case 0: // delete a live device (one whose channel nets carry
			// labels, so it cannot be a dangling stub both sides would
			// prune anyway)
			at := -1
			for i, d := range lay.Devices {
				if labeled(lay, d.A) && labeled(lay, d.B) && d.A != d.B {
					at = i
					break
				}
			}
			if at < 0 {
				continue
			}
			lay.Devices = append(lay.Devices[:at], lay.Devices[at+1:]...)
			res := Compare(ref, lay)
			if res.Clean {
				t.Fatalf("trial %d: deleted device verified clean", trial)
			}
			if !hasKind(res, KindDevice) && !hasKind(res, KindNet) {
				t.Fatalf("trial %d: deleted device reported as %v", trial, res.Mismatches)
			}
		case 1: // rewire one live device's gate onto a labeled net
			at := -1
			for i, d := range lay.Devices {
				if labeled(lay, d.A) && labeled(lay, d.B) && d.A != d.B {
					at = i
					break
				}
			}
			target := lay.Labels[fmt.Sprintf("L%d", rng.Intn(6))]
			if at < 0 || lay.Devices[at].Gate == target {
				continue
			}
			lay.Devices[at].Gate = target
			res := Compare(ref, lay)
			rewires++
			if res.Clean {
				// a rewire between automorphic nets genuinely preserves
				// isomorphism; tolerate a rare clean verdict but count it
				continue
			}
			rewiresCaught++
			if !hasKind(res, KindDevice) && !hasKind(res, KindNet) &&
				!hasKind(res, KindShort) && !hasKind(res, KindOpen) {
				t.Fatalf("trial %d: rewired gate reported as %v", trial, res.Mismatches)
			}
		case 2: // short two labeled nets in the layout
			n1, n2 := lay.Labels["L0"], lay.Labels["L1"]
			if n1 == n2 {
				continue
			}
			for i := range lay.Devices {
				d := &lay.Devices[i]
				if d.Gate == n2 {
					d.Gate = n1
				}
				if d.A == n2 {
					d.A = n1
				}
				if d.B == n2 {
					d.B = n1
				}
			}
			for name, net := range lay.Labels {
				if net == n2 {
					lay.Labels[name] = n1
				}
			}
			res := Compare(ref, lay)
			if res.Clean {
				t.Fatalf("trial %d: shorted nets verified clean", trial)
			}
			if !hasKind(res, KindShort) {
				t.Fatalf("trial %d: short reported as %v", trial, res.Mismatches)
			}
		case 3: // open: split a labeled net in the layout
			src := lay.Labels["L0"]
			fresh := lay.NetCount
			lay.NetCount++
			moved := false
			for i := range lay.Devices {
				d := &lay.Devices[i]
				if d.A == src && !moved {
					d.A = fresh
					moved = true
				}
			}
			if !moved {
				continue
			}
			// move one of the labels onto the split-off net, as a real
			// open leaves connectors on both pieces
			lay.Labels["L0X"] = fresh
			ref.Labels["L0X"] = ref.Labels["L0"]
			res := Compare(ref, lay)
			if res.Clean {
				t.Fatalf("trial %d: split net verified clean", trial)
			}
			if !hasKind(res, KindOpen) {
				t.Fatalf("trial %d: open reported as %v", trial, res.Mismatches)
			}
		}
	}
	if rewiresCaught*10 < rewires*8 {
		t.Fatalf("only %d of %d gate rewires caught", rewiresCaught, rewires)
	}
}
