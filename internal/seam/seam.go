// Package seam holds the placement-signature and abutment-seam
// primitives shared by the hierarchical verifiers: the LVS reference
// derivation (internal/lvs) introduced them in PR 4/5, and the
// hierarchical extraction/DRC certificate engine (internal/hier) reuses
// them rather than duplicating the contract. The constants and
// formulas here are load-bearing for persisted cache entries — the
// castore fingerprints of LVS leaf entries and hierarchical cell
// certificates embed Reach, so changing it re-keys every on-disk
// namespace that depends on seam semantics.
package seam

import (
	"riot/internal/geom"
	"riot/internal/rules"
)

// Reach is the base distance the abutment contract reaches into a
// cell, in centimicrons: for plainly abutted boxes (touching, not
// overlapping), material within this distance of the cell's bounding
// box participates in seam continuity. Wire end caps and rail halves
// bleed at most half the widest library wire (2 lambda) past the box,
// so 4 lambda covers every sanctioned contact point with margin.
//
// Reach is NOT a cap on seam trust: an ABUT OVERLAP places the boxes
// overlapping, and material as deep as the overlap reaches can
// legitimately touch the neighbor's. Callers retain boundary material
// to the deepest reach any seam actually needs (Depth, computed from
// the overlap of the two placed boxes), so a deep overlap stitches
// exactly like a shallow one.
const Reach = 4 * rules.Lambda

// Depth bounds how deep (in centimicrons, measured inward from bu's
// boundary) sanctioned seam contact against bv can reach into bu: the
// deepest point of the pair's seam window — the box intersection
// inflated by the contract's base reach — measured by inward
// L-infinity distance. Plainly abutted boxes (degenerate intersection)
// yield the base Reach; an ABUT OVERLAP yields overlap depth plus
// margin. The bound errs high (the margin absorbs material bleeding
// past the boxes and exact-boundary contact), never low.
func Depth(bu, bv geom.Rect) int {
	sx0, sy0 := max(bu.Min.X, bv.Min.X), max(bu.Min.Y, bv.Min.Y)
	sx1, sy1 := min(bu.Max.X, bv.Max.X), min(bu.Max.Y, bv.Max.Y)
	if sx0 > sx1 || sy0 > sy1 {
		return 0
	}
	dx := axisDepth(max(sx0-Reach, bu.Min.X), min(sx1+Reach, bu.Max.X), bu.Min.X, bu.Max.X)
	dy := axisDepth(max(sy0-Reach, bu.Min.Y), min(sy1+Reach, bu.Max.Y), bu.Min.Y, bu.Max.Y)
	return min(dx, dy)
}

// axisDepth is the maximum over x in [w0, w1] of min(x-b0, b1-x): the
// deepest one-axis penetration of the window into the box span.
func axisDepth(w0, w1, b0, b1 int) int {
	x := (b0 + b1) / 2
	if x < w0 {
		x = w0
	}
	if x > w1 {
		x = w1
	}
	return min(x-b0, b1-x)
}

// fnv-1a, the hash behind placement signatures and refinement colors.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// FNVInit returns the fnv-1a offset basis.
func FNVInit() uint64 { return fnvOffset }

// FNVMix folds one 64-bit value into an fnv-1a hash, byte by byte.
func FNVMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// Pack32 packs two ints into one hashable word (low 32 bits each).
func Pack32(a, b int) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }
